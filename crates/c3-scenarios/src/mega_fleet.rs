//! Mega-fleet workload: hundreds of replicas serving a six-figure
//! population of closed-loop clients — the million-user-scale regime the
//! roadmap's multi-process fleets push every simulation into.
//!
//! C3's evaluation (§6) scales to hundreds of clients per replica group;
//! this scenario takes the same shape two orders of magnitude further:
//! every simulated client is an independent think → request → response
//! cycle, so the kernel holds **one pending timer per client** (100k+
//! concurrent events) for the whole run. Think times (~200 ms) sit several
//! ring spans past the calendar queue's horizon, so the far-future
//! overflow tier — not just the ring — carries the census. That makes
//! this scenario double as the kernel's scale proof: `bench_engine`
//! reports its ops/sec next to the 65536-pending churn row.
//!
//! Selector state is pooled: clients map onto a fixed set of **selector
//! shards** (the live client shards its baseline selector state the same
//! way), so 100k clients cost 100k pending events but only
//! `selector_shards` selector instances. Backpressure backlogs and retry
//! timers live on the shard, matching the shared selector whose rate
//! limiter actually pushed back.

use std::collections::VecDeque;

use c3_cluster::SnitchSelector;
use c3_core::{BacklogQueue, C3Config, Feedback, Nanos, ReplicaSelector, ResponseInfo, Selection};
use c3_engine::{
    BuiltSelector, ChannelId, ChannelSet, EventQueue, RunMetrics, Scenario, ScenarioRunner,
    SeedSeq, SelectorCtx, Strategy, StrategyRegistry, TimerId,
};
use c3_telemetry::{Recorder, ReplicaSnap, TracePoint, NO_SERVER, TRACE_GROUP};
use c3_workload::{exp_sample, ScrambledZipfian};
use rand::rngs::SmallRng;

use crate::options::{RunOptions, RunOutput};
use crate::report::ScenarioReport;

/// Full configuration of one mega-fleet run.
#[derive(Clone, Debug)]
pub struct MegaFleetConfig {
    /// Replica servers in the fleet.
    pub servers: usize,
    /// Closed-loop simulated clients; each holds exactly one pending
    /// event (a think timer or an in-flight request) at all times, so
    /// this is also the kernel's sustained pending-event census.
    pub clients: u64,
    /// Selector instances shared by the clients (`client % shards`).
    pub selector_shards: usize,
    /// Replica-group size.
    pub replication_factor: usize,
    /// Requests a server executes in parallel.
    pub server_concurrency: usize,
    /// Mean service time in ms (exponential).
    pub mean_service_ms: f64,
    /// Mean per-client think time between response and next request, ms
    /// (exponential). With `clients` closed loops the offered rate is
    /// ≈ `clients / (think + response)`.
    pub mean_think_ms: f64,
    /// Absolute offered arrival rate in requests/second, overriding the
    /// think time with `clients / rate` when set (approximate closed-loop
    /// pacing — the axis the SLO controller searches).
    pub offered_rate: Option<f64>,
    /// Record measured latencies into exact (every-sample) reservoirs.
    pub exact_latency: bool,
    /// One-way client/server network latency.
    pub one_way_latency: Nanos,
    /// Distinct keys; a key's replica group is `key % servers`.
    pub keys: u64,
    /// Zipfian constant of the key distribution, in `(0, 1)` exclusive.
    pub zipf_theta: f64,
    /// Completions that end the run.
    pub total_requests: u64,
    /// Requests excluded from latency measurement while state warms up.
    pub warmup_requests: u64,
    /// Strategy under test, by registry name.
    pub strategy: Strategy,
    /// C3 parameters; `concurrency_weight` is set to the shard count.
    pub c3: C3Config,
    /// Recompute interval for Dynamic Snitching selectors.
    pub snitch_tick: Nanos,
    /// Window for the per-server load time series.
    pub load_window: Nanos,
    /// RNG seed.
    pub seed: u64,
}

impl Default for MegaFleetConfig {
    fn default() -> Self {
        Self {
            servers: 256,
            clients: 120_000,
            selector_shards: 128,
            replication_factor: 3,
            server_concurrency: 8,
            mean_service_ms: 2.0,
            mean_think_ms: 200.0,
            offered_rate: None,
            exact_latency: false,
            one_way_latency: Nanos::from_micros(250),
            keys: 100_000,
            zipf_theta: 0.9,
            total_requests: 40_000,
            warmup_requests: 2_000,
            strategy: Strategy::c3(),
            c3: C3Config::default(),
            snitch_tick: Nanos::from_millis(100),
            load_window: Nanos::from_millis(100),
            seed: 1,
        }
    }
}

impl MegaFleetConfig {
    /// Fleet capacity in requests/second.
    pub fn capacity(&self) -> f64 {
        self.servers as f64 * self.server_concurrency as f64 * 1000.0 / self.mean_service_ms
    }

    /// The mean think time actually used: the configured one, or the
    /// `offered_rate` pacing override.
    pub fn effective_think_ms(&self) -> f64 {
        match self.offered_rate {
            Some(rate) => self.clients as f64 / rate * 1000.0,
            None => self.mean_think_ms,
        }
    }

    /// Validate invariants.
    ///
    /// # Panics
    ///
    /// Panics when a parameter is out of range.
    pub fn validate(&self) {
        assert!(self.servers >= self.replication_factor, "too few servers");
        assert!(self.clients >= 1, "need clients");
        assert!(
            self.selector_shards >= 1 && self.selector_shards as u64 <= self.clients,
            "selector shards must be in [1, clients]"
        );
        assert!(self.server_concurrency >= 1, "need execution slots");
        assert!(self.mean_service_ms > 0.0, "service time must be positive");
        assert!(self.mean_think_ms > 0.0, "think time must be positive");
        if let Some(rate) = self.offered_rate {
            assert!(
                rate.is_finite() && rate > 0.0,
                "offered rate must be positive and finite"
            );
        }
        assert!(self.keys > 0, "need keys");
        assert!(
            self.zipf_theta > 0.0 && self.zipf_theta < 1.0,
            "zipf theta must be in (0,1) exclusive"
        );
        assert!(self.total_requests > 0, "need requests");
        assert!(
            self.warmup_requests < self.total_requests,
            "warm-up swallows the run"
        );
        self.c3.validate();
    }
}

/// The scenario's event alphabet.
#[derive(Clone, Copy, Debug)]
#[allow(missing_docs)]
pub enum MfEvent {
    /// A client's think timer fires: issue its next request.
    Arrive { client: u32 },
    /// A request reaches its server.
    ServerArrive { req: u64 },
    /// A request finishes executing at its server.
    ServiceDone {
        server: u32,
        req: u64,
        service_time: Nanos,
    },
    /// A response reaches its client.
    ClientReceive { req: u64 },
    /// A shard retries the backlog of one replica group.
    RetryBacklog { shard: u32, group: u32 },
    /// Dynamic Snitching selectors recompute their scores.
    SnitchTick,
}

#[derive(Clone, Copy, Debug)]
struct MfRequest {
    client: u32,
    group: u16,
    server: u16,
    created: Nanos,
    sent_at: Nanos,
    measured: bool,
}

struct MfServer {
    queue: VecDeque<u64>,
    inflight: usize,
}

/// One pooled selector instance plus the backpressure state owned by it.
struct MfShard {
    /// `None` for the Oracle, which reads global server state instead.
    selector: Option<Box<dyn ReplicaSelector>>,
    backlogs: Vec<BacklogQueue<u64>>,
    /// Pending `RetryBacklog` timer per replica group, cancelled when a
    /// response drains the backlog first (so no dead retry events fire).
    retry_timer: Vec<Option<TimerId>>,
}

/// The mega-fleet scenario, driven by the engine's [`ScenarioRunner`].
pub struct MegaFleetScenario {
    cfg: MegaFleetConfig,
    servers: Vec<MfServer>,
    shards: Vec<MfShard>,
    groups: Vec<Vec<usize>>,
    requests: Vec<MfRequest>,
    feedbacks: Vec<Feedback>,
    keys: ScrambledZipfian,
    wl_rng: SmallRng,
    srv_rng: SmallRng,
    think_ms: f64,
    generated: u64,
    dead_retries: u64,
    /// Flight recorder for the request lifecycle trace; purely
    /// observational — a run's fingerprint is identical with and without.
    recorder: Option<Recorder>,
}

impl MegaFleetScenario {
    /// Build the scenario, resolving the strategy through `registry`.
    ///
    /// # Panics
    ///
    /// Panics when the configured strategy is not in the registry.
    pub fn new(cfg: MegaFleetConfig, registry: &StrategyRegistry) -> Self {
        cfg.validate();
        let seeds = SeedSeq::new(cfg.seed);
        let wl_rng = seeds.workload_rng();
        let srv_rng = seeds.service_rng(37);

        let mut c3 = cfg.c3;
        c3.concurrency_weight = cfg.selector_shards as f64;

        let groups: Vec<Vec<usize>> = (0..cfg.servers)
            .map(|g| {
                (0..cfg.replication_factor)
                    .map(|k| (g + k) % cfg.servers)
                    .collect()
            })
            .collect();

        let servers = (0..cfg.servers)
            .map(|_| MfServer {
                queue: VecDeque::new(),
                inflight: 0,
            })
            .collect();

        let shards: Vec<MfShard> = (0..cfg.selector_shards)
            .map(|i| {
                let ctx = SelectorCtx {
                    servers: cfg.servers,
                    c3,
                    seed: seeds.client_seed(i as u64),
                    now: Nanos::ZERO,
                };
                let selector = match registry
                    .build(&cfg.strategy, &ctx)
                    .unwrap_or_else(|e| panic!("{e}"))
                {
                    BuiltSelector::Selector(s) => Some(s),
                    BuiltSelector::Oracle => None,
                };
                MfShard {
                    selector,
                    backlogs: (0..cfg.servers).map(|_| BacklogQueue::new()).collect(),
                    retry_timer: vec![None; cfg.servers],
                }
            })
            .collect();

        let think_ms = cfg.effective_think_ms();
        Self {
            servers,
            shards,
            groups,
            // In-flight requests can overshoot the completion target by up
            // to one per client; reserve for the common case only.
            requests: Vec::with_capacity(cfg.total_requests as usize),
            feedbacks: Vec::with_capacity(cfg.total_requests as usize),
            keys: ScrambledZipfian::new(cfg.keys, cfg.keys, cfg.zipf_theta),
            wl_rng,
            srv_rng,
            think_ms,
            generated: 0,
            dead_retries: 0,
            recorder: None,
            cfg,
        }
    }

    /// Attach a flight recorder: issue → decision → send → feedback →
    /// complete events flow into its ring buffer. Recording is purely
    /// observational; results are bit-identical with and without it.
    pub fn set_recorder(&mut self, recorder: Recorder) {
        self.recorder = Some(recorder);
    }

    /// Detach the flight recorder, if any.
    pub fn take_recorder(&mut self) -> Option<Recorder> {
        self.recorder.take()
    }

    /// `RetryBacklog` events that fired against an already-drained
    /// backlog. Draining cancels the pending timer, so this stays zero —
    /// asserted regression-style across the scenario library.
    pub fn dead_events(&self) -> u64 {
        self.dead_retries
    }

    /// The config in force.
    pub fn config(&self) -> &MegaFleetConfig {
        &self.cfg
    }

    #[inline]
    fn shard_of(&self, client: u32) -> usize {
        client as usize % self.cfg.selector_shards
    }

    fn think_gap(&mut self) -> Nanos {
        Nanos::from_millis_f64(exp_sample(&mut self.wl_rng, self.think_ms))
    }

    fn service_time(&mut self) -> Nanos {
        Nanos::from_millis_f64(exp_sample(&mut self.srv_rng, self.cfg.mean_service_ms))
    }

    fn on_arrive(
        &mut self,
        client: u32,
        now: Nanos,
        engine: &mut EventQueue<MfEvent>,
        metrics: &RunMetrics,
    ) {
        let issue_index = self.generated;
        self.generated += 1;
        let key = self.keys.sample(&mut self.wl_rng);
        let group = (key % self.cfg.servers as u64) as usize;
        let req = self.requests.len() as u64;
        self.requests.push(MfRequest {
            client,
            group: group as u16,
            server: u16::MAX,
            created: now,
            sent_at: Nanos::ZERO,
            measured: metrics.past_warmup(issue_index),
        });
        self.feedbacks.push(Feedback::new(0, Nanos::ZERO));
        if let Some(rec) = &mut self.recorder {
            rec.record(now, req, TracePoint::Issue);
        }
        self.try_dispatch(req, now, engine);
    }

    /// Record a selection decision into the flight recorder: what the
    /// shard's selector saw for every candidate (chosen replica first, so
    /// the [`TRACE_GROUP`] truncation can never drop it) plus the
    /// ground-truth pending depth at each server. `chosen == None` marks a
    /// backpressure verdict. No-op unless an event-recording recorder is
    /// attached.
    fn record_decision(
        &mut self,
        req: u64,
        shard_id: usize,
        chosen: Option<usize>,
        group_id: usize,
        now: Nanos,
    ) {
        if self.recorder.as_ref().is_none_or(|r| r.capacity() == 0) {
            return;
        }
        let mut snaps = [ReplicaSnap::empty(); TRACE_GROUP];
        let mut len = 0usize;
        let ordered = chosen.into_iter().chain(
            self.groups[group_id]
                .iter()
                .copied()
                .filter(|&s| Some(s) != chosen),
        );
        for server in ordered.take(TRACE_GROUP) {
            let pending = (self.servers[server].inflight + self.servers[server].queue.len()) as u32;
            let view = self.shards[shard_id]
                .selector
                .as_deref()
                .and_then(|sel| sel.replica_view(server));
            snaps[len] = match view {
                Some(view) => ReplicaSnap::from_view(server as u32, &view, pending),
                // The Oracle exposes no view; keep the ground truth so
                // queue-regret still works where score-regret cannot.
                None => ReplicaSnap::blind(server as u32, pending),
            };
            len += 1;
        }
        let rec = self.recorder.as_mut().expect("checked above");
        rec.record(
            now,
            req,
            TracePoint::Decision {
                chosen: chosen.map_or(NO_SERVER, |c| c as u32),
                group_len: len as u8,
                group: snaps,
            },
        );
    }

    fn try_dispatch(&mut self, req: u64, now: Nanos, engine: &mut EventQueue<MfEvent>) {
        let (shard_id, group_id) = {
            let r = &self.requests[req as usize];
            (self.shard_of(r.client), r.group as usize)
        };

        // Oracle path: perfect knowledge of instantaneous queue depths.
        if self.shards[shard_id].selector.is_none() {
            let server = self.oracle_pick(group_id);
            self.record_decision(req, shard_id, Some(server), group_id, now);
            self.send(req, server, now, engine);
            return;
        }

        let selection = {
            let group = &self.groups[group_id];
            let sel = self.shards[shard_id].selector.as_mut().expect("selector");
            sel.select(group, now)
        };
        match selection {
            Selection::Server(server) => {
                self.record_decision(req, shard_id, Some(server), group_id, now);
                self.send(req, server, now, engine)
            }
            Selection::Backpressure { retry_at } => {
                self.record_decision(req, shard_id, None, group_id, now);
                let shard = &mut self.shards[shard_id];
                shard.backlogs[group_id].push(req);
                if shard.retry_timer[group_id].is_none() {
                    let at = retry_at.max(now + Nanos(1));
                    let timer = engine.schedule_cancellable(
                        at,
                        MfEvent::RetryBacklog {
                            shard: shard_id as u32,
                            group: group_id as u32,
                        },
                    );
                    shard.retry_timer[group_id] = Some(timer);
                }
            }
        }
    }

    fn oracle_pick(&self, group_id: usize) -> usize {
        *self.groups[group_id]
            .iter()
            .min_by_key(|&&s| self.servers[s].inflight + self.servers[s].queue.len())
            .expect("non-empty group")
    }

    fn send(&mut self, req: u64, server: usize, now: Nanos, engine: &mut EventQueue<MfEvent>) {
        let client = {
            let r = &mut self.requests[req as usize];
            r.server = server as u16;
            r.sent_at = now;
            r.client
        };
        let shard_id = self.shard_of(client);
        if let Some(sel) = self.shards[shard_id].selector.as_mut() {
            sel.on_send(server, now);
        }
        // No Send record: every send here is implied by the `Decision`
        // event recorded at the same timestamp (attribution folds them).
        engine.schedule_in(self.cfg.one_way_latency, MfEvent::ServerArrive { req });
    }

    fn on_server_arrive(&mut self, req: u64, engine: &mut EventQueue<MfEvent>) {
        let server = self.requests[req as usize].server as usize;
        if self.servers[server].inflight < self.cfg.server_concurrency {
            self.servers[server].inflight += 1;
            let st = self.service_time();
            engine.schedule_in(
                st,
                MfEvent::ServiceDone {
                    server: server as u32,
                    req,
                    service_time: st,
                },
            );
        } else {
            self.servers[server].queue.push_back(req);
        }
    }

    fn on_service_done(
        &mut self,
        server: usize,
        req: u64,
        service_time: Nanos,
        now: Nanos,
        engine: &mut EventQueue<MfEvent>,
        metrics: &mut RunMetrics,
    ) {
        metrics.record_service(server, now);
        self.servers[server].inflight -= 1;
        if let Some(next) = self.servers[server].queue.pop_front() {
            self.servers[server].inflight += 1;
            let st = self.service_time();
            engine.schedule_in(
                st,
                MfEvent::ServiceDone {
                    server: server as u32,
                    req: next,
                    service_time: st,
                },
            );
        }
        let pending = (self.servers[server].inflight + self.servers[server].queue.len()) as u32;
        self.feedbacks[req as usize] = Feedback::new(pending, service_time);
        engine.schedule_in(self.cfg.one_way_latency, MfEvent::ClientReceive { req });
    }

    fn on_client_receive(
        &mut self,
        req: u64,
        now: Nanos,
        engine: &mut EventQueue<MfEvent>,
        metrics: &mut RunMetrics,
    ) {
        let r = self.requests[req as usize];
        let shard_id = self.shard_of(r.client);
        let server = r.server as usize;
        if let Some(sel) = self.shards[shard_id].selector.as_mut() {
            sel.on_response(
                server,
                &ResponseInfo {
                    response_time: now.saturating_sub(r.sent_at),
                    feedback: Some(self.feedbacks[req as usize]),
                },
                now,
            );
        }
        metrics.record_completion(
            ChannelId::new(0),
            now,
            now.saturating_sub(r.created),
            r.measured,
        );
        if let Some(rec) = &mut self.recorder {
            let fb = self.feedbacks[req as usize];
            rec.record(
                now,
                req,
                TracePoint::Feedback {
                    server: server as u32,
                    queue: fb.queue_size,
                    service_ns: fb.service_time.as_nanos(),
                },
            );
            // Warm-up requests get no Complete event, so they never join
            // into attribution rows — matching the latency channel.
            if r.measured {
                rec.record(
                    now,
                    req,
                    TracePoint::Complete {
                        latency_ns: now.saturating_sub(r.created).as_nanos(),
                    },
                );
            }
        }
        // A response may free rate for the groups containing this server.
        let rf = self.cfg.replication_factor;
        let n = self.cfg.servers;
        for k in 0..rf {
            let group_id = (server + n - k) % n;
            if !self.shards[shard_id].backlogs[group_id].is_empty() {
                self.on_retry(shard_id, group_id, now, engine, false);
            }
        }
        // Closed loop: the client thinks, then issues its next request —
        // exactly one pending event per client, for the whole run.
        let gap = self.think_gap();
        engine.schedule_in(gap, MfEvent::Arrive { client: r.client });
    }

    fn on_retry(
        &mut self,
        shard_id: usize,
        group_id: usize,
        now: Nanos,
        engine: &mut EventQueue<MfEvent>,
        from_timer: bool,
    ) {
        if from_timer {
            // The timer owning this event has fired; forget its handle.
            self.shards[shard_id].retry_timer[group_id] = None;
            if self.shards[shard_id].backlogs[group_id].is_empty() {
                // Unreachable since draining cancels the timer; counted so
                // a regression back to fire-and-filter is visible.
                self.dead_retries += 1;
                return;
            }
        } else if let Some(timer) = self.shards[shard_id].retry_timer[group_id].take() {
            // A response beat the retry timer to this backlog: the drain
            // below supersedes it, so the timer must not fire dead.
            engine.cancel(timer);
        }
        loop {
            let Some(&req) = self.shards[shard_id].backlogs[group_id].peek() else {
                return;
            };
            let selection = {
                let group = &self.groups[group_id];
                let sel = self.shards[shard_id]
                    .selector
                    .as_mut()
                    .expect("backpressure implies a selector");
                sel.select(group, now)
            };
            match selection {
                Selection::Server(server) => {
                    self.record_decision(req, shard_id, Some(server), group_id, now);
                    self.shards[shard_id].backlogs[group_id].pop();
                    self.send(req, server, now, engine);
                }
                Selection::Backpressure { retry_at } => {
                    let shard = &mut self.shards[shard_id];
                    if shard.retry_timer[group_id].is_none() {
                        let at = retry_at.max(now + Nanos(1));
                        let timer = engine.schedule_cancellable(
                            at,
                            MfEvent::RetryBacklog {
                                shard: shard_id as u32,
                                group: group_id as u32,
                            },
                        );
                        shard.retry_timer[group_id] = Some(timer);
                    }
                    return;
                }
            }
        }
    }

    /// Feed Dynamic Snitching selectors their periodic recompute.
    fn on_snitch_tick(&mut self, now: Nanos, engine: &mut EventQueue<MfEvent>) {
        let servers = self.cfg.servers;
        for shard in &mut self.shards {
            if let Some(snitch) = shard
                .selector
                .as_mut()
                .and_then(|s| s.as_any_mut())
                .and_then(|any| any.downcast_mut::<SnitchSelector>())
            {
                for peer in 0..servers {
                    snitch.snitch_mut().record_iowait(peer, 0.02);
                }
                snitch.snitch_mut().recompute(now);
            }
        }
        engine.schedule_in(self.cfg.snitch_tick, MfEvent::SnitchTick);
    }
}

impl Scenario for MegaFleetScenario {
    type Event = MfEvent;

    fn channels(&self) -> ChannelSet {
        ChannelSet::of(["fleet".to_string()])
    }

    fn start(&mut self, engine: &mut EventQueue<MfEvent>) {
        for client in 0..self.cfg.clients {
            let jitter = self.think_gap();
            engine.schedule(
                jitter,
                MfEvent::Arrive {
                    client: client as u32,
                },
            );
        }
        engine.schedule(self.cfg.snitch_tick, MfEvent::SnitchTick);
    }

    fn handle(
        &mut self,
        event: MfEvent,
        now: Nanos,
        engine: &mut EventQueue<MfEvent>,
        metrics: &mut RunMetrics,
    ) {
        match event {
            MfEvent::Arrive { client } => self.on_arrive(client, now, engine, metrics),
            MfEvent::ServerArrive { req } => self.on_server_arrive(req, engine),
            MfEvent::ServiceDone {
                server,
                req,
                service_time,
            } => self.on_service_done(server as usize, req, service_time, now, engine, metrics),
            MfEvent::ClientReceive { req } => self.on_client_receive(req, now, engine, metrics),
            MfEvent::RetryBacklog { shard, group } => {
                self.on_retry(shard as usize, group as usize, now, engine, true)
            }
            MfEvent::SnitchTick => self.on_snitch_tick(now, engine),
        }
    }

    fn is_done(&self, metrics: &RunMetrics) -> bool {
        metrics.total_completions() >= self.cfg.total_requests
    }
}

/// Run a mega-fleet config to completion and report the fleet channel.
/// Attach a recorder via [`RunOptions::recorded`] to capture the request
/// lifecycle trace and decision snapshots; the report is bit-identical
/// either way.
pub fn run(cfg: MegaFleetConfig, registry: &StrategyRegistry, options: RunOptions) -> RunOutput {
    let runner = ScenarioRunner::new(cfg.seed)
        .with_warmup(cfg.warmup_requests)
        .with_exact_latency_if(cfg.exact_latency);
    let servers = cfg.servers;
    let load_window = cfg.load_window;
    let strategy = cfg.strategy.clone();
    let seed = cfg.seed;
    let mut scenario = MegaFleetScenario::new(cfg, registry);
    if let Some(rec) = options.recorder {
        scenario.set_recorder(rec);
    }
    let (metrics, stats) = runner.run(&mut scenario, servers, load_window);
    let recorder = scenario.take_recorder();
    let report = ScenarioReport::from_metrics(super::MEGA_FLEET, &strategy, seed, &metrics, &stats)
        .with_dead_events(scenario.dead_events());
    RunOutput { report, recorder }
}

/// Deprecated wrapper over [`run`] with a recorder attached.
#[deprecated(note = "use run(cfg, registry, RunOptions::recorded(recorder)) instead")]
pub fn run_recorded(
    cfg: MegaFleetConfig,
    registry: &StrategyRegistry,
    recorder: Recorder,
) -> (ScenarioReport, Recorder) {
    run(cfg, registry, RunOptions::recorded(recorder)).expect_recorded()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario_registry;

    /// A scaled-down fleet for quick in-crate tests; the registry tests
    /// exercise the full 120k-client default shape.
    fn small(strategy: Strategy) -> MegaFleetConfig {
        MegaFleetConfig {
            servers: 32,
            clients: 2_000,
            selector_shards: 16,
            total_requests: 5_000,
            warmup_requests: 400,
            strategy,
            seed: 5,
            ..MegaFleetConfig::default()
        }
    }

    #[test]
    fn every_client_holds_one_pending_event_at_start() {
        let cfg = small(Strategy::c3());
        let clients = cfg.clients;
        let mut scenario = MegaFleetScenario::new(cfg, &scenario_registry());
        let mut engine = EventQueue::new();
        scenario.start(&mut engine);
        // One think timer per client, plus the snitch tick.
        assert_eq!(engine.len(), clients as usize + 1);
    }

    #[test]
    fn closed_loop_completes_and_reports_the_fleet_channel() {
        let report = run(
            small(Strategy::c3()),
            &scenario_registry(),
            RunOptions::default(),
        )
        .report;
        assert_eq!(report.channels.len(), 1);
        assert_eq!(report.headline().name, "fleet");
        assert!(report.total_completions() > 0);
        assert_eq!(report.dead_events, 0);
    }

    #[test]
    fn runs_are_deterministic() {
        let a = run(
            small(Strategy::c3()),
            &scenario_registry(),
            RunOptions::default(),
        )
        .report;
        let b = run(
            small(Strategy::c3()),
            &scenario_registry(),
            RunOptions::default(),
        )
        .report;
        assert_eq!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn oracle_and_snitch_run_on_this_frontend() {
        for strategy in [Strategy::oracle(), Strategy::dynamic_snitching()] {
            let report = run(
                small(strategy.clone()),
                &scenario_registry(),
                RunOptions::default(),
            )
            .report;
            assert!(
                report.total_completions() > 0,
                "strategy {strategy} must complete"
            );
        }
    }

    #[test]
    fn offered_rate_overrides_the_think_time() {
        let mut cfg = small(Strategy::c3());
        cfg.offered_rate = Some(1_000.0);
        // 2000 clients at 1000 req/s → 2 s mean think time.
        assert!((cfg.effective_think_ms() - 2_000.0).abs() < 1e-9);
        cfg.validate();
    }

    #[test]
    #[should_panic(expected = "selector shards")]
    fn more_shards_than_clients_is_rejected() {
        let mut cfg = small(Strategy::c3());
        cfg.selector_shards = 4_000;
        cfg.validate();
    }
}
