//! Multi-tenant workload: several tenant classes with distinct key skew,
//! demand share and value sizes contending for one replicated fleet.
//!
//! §5 of the paper stresses C3 with *skewed demand*; production stores see
//! that skew arrive as tenants — an interactive app hammering a hot
//! keyset, an analytics job scanning colder keys with large values, a bulk
//! loader pushing big records at low rate. Each tenant here is an
//! independent open-loop Poisson source with its own Zipfian key chooser
//! and fixed value size (which scales service time), all sharing the same
//! servers, clients and replica groups. Latency is recorded into one
//! **named channel per tenant**, so a single run answers the question the
//! positional-channel era could not express: *who* pays the tail when the
//! fleet misbehaves.

use std::collections::VecDeque;

use c3_cluster::SnitchSelector;
use c3_core::{BacklogQueue, C3Config, Feedback, Nanos, ReplicaSelector, ResponseInfo, Selection};
use c3_engine::{
    BuiltSelector, ChannelId, ChannelSet, EventQueue, RunMetrics, Scenario, ScenarioRunner,
    SeedSeq, SelectorCtx, Strategy, StrategyRegistry, TimerId,
};
use c3_telemetry::{Recorder, ReplicaSnap, TracePoint, NO_SERVER, TRACE_GROUP};
use c3_workload::{exp_sample, PoissonArrivals, ScrambledZipfian};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::options::{RunOptions, RunOutput};
use crate::report::ScenarioReport;

/// One tenant class sharing the fleet.
#[derive(Clone, Debug)]
pub struct TenantSpec {
    /// Channel name this tenant's latencies are recorded under.
    pub name: String,
    /// Zipfian constant of the tenant's key distribution, in `(0, 1)`
    /// exclusive — YCSB's 0.99 is heavily skewed, values near 0 approach
    /// uniform.
    pub zipf_theta: f64,
    /// The tenant's share of the total offered arrival rate, in `(0, 1]`.
    pub demand_fraction: f64,
    /// Value size in bytes; service time scales linearly with it
    /// (1024 B = the base mean service time).
    pub value_bytes: u32,
}

impl TenantSpec {
    /// A latency-sensitive interactive tenant: hot Zipfian keys, small
    /// values, the bulk of the demand.
    pub fn interactive() -> Self {
        Self {
            name: "interactive".into(),
            zipf_theta: 0.99,
            demand_fraction: 0.6,
            value_bytes: 1024,
        }
    }

    /// An analytics tenant: mild skew, 4 KB values, moderate demand.
    pub fn analytics() -> Self {
        Self {
            name: "analytics".into(),
            zipf_theta: 0.6,
            demand_fraction: 0.3,
            value_bytes: 4096,
        }
    }

    /// A bulk-load tenant: near-uniform keys, 8 KB values, low rate.
    pub fn bulk() -> Self {
        Self {
            name: "bulk".into(),
            zipf_theta: 0.2,
            demand_fraction: 0.1,
            value_bytes: 8192,
        }
    }
}

/// Full configuration of one multi-tenant run.
#[derive(Clone, Debug)]
pub struct MultiTenantConfig {
    /// Replica servers sharing the fleet.
    pub servers: usize,
    /// Clients performing replica selection.
    pub clients: usize,
    /// Replica-group size.
    pub replication_factor: usize,
    /// Requests a server executes in parallel.
    pub server_concurrency: usize,
    /// Mean service time for a 1 KB value, ms (exponential).
    pub mean_service_ms: f64,
    /// Offered load as a fraction of fleet capacity, accounting for each
    /// tenant's value-size service multiplier.
    pub utilization: f64,
    /// Absolute offered arrival rate in requests/second across all
    /// tenants, overriding the `utilization`-derived rate when set.
    /// Unlike `utilization` it is not clamped below capacity — the
    /// SLO-seeking controller's search bracket deliberately crosses the
    /// saturation point.
    pub offered_rate: Option<f64>,
    /// Record measured latencies into exact (every-sample) reservoirs so
    /// summaries report exact order statistics (claims/figure/SLO-probe
    /// tiers). Costs O(requests) memory.
    pub exact_latency: bool,
    /// One-way client/server network latency.
    pub one_way_latency: Nanos,
    /// Distinct keys; a key's replica group is `key % servers`.
    pub keys: u64,
    /// Total requests across all tenants.
    pub total_requests: u64,
    /// Requests excluded from latency measurement while state warms up.
    pub warmup_requests: u64,
    /// The tenant classes (channel names must be unique).
    pub tenants: Vec<TenantSpec>,
    /// Strategy under test, by registry name.
    pub strategy: Strategy,
    /// C3 parameters; `concurrency_weight` is set to the client count.
    pub c3: C3Config,
    /// Recompute interval for Dynamic Snitching selectors (fed through the
    /// selector's downcast hook, as the cluster does via gossip).
    pub snitch_tick: Nanos,
    /// Window for the per-server load time series.
    pub load_window: Nanos,
    /// RNG seed.
    pub seed: u64,
}

impl Default for MultiTenantConfig {
    fn default() -> Self {
        Self {
            servers: 12,
            clients: 24,
            replication_factor: 3,
            server_concurrency: 4,
            mean_service_ms: 3.0,
            utilization: 0.65,
            offered_rate: None,
            exact_latency: false,
            one_way_latency: Nanos::from_micros(250),
            keys: 100_000,
            total_requests: 40_000,
            warmup_requests: 2_000,
            tenants: vec![
                TenantSpec::interactive(),
                TenantSpec::analytics(),
                TenantSpec::bulk(),
            ],
            strategy: Strategy::c3(),
            c3: C3Config::default(),
            snitch_tick: Nanos::from_millis(100),
            load_window: Nanos::from_millis(100),
            seed: 1,
        }
    }
}

impl MultiTenantConfig {
    /// Mean service time in ms averaged over tenant demand (value sizes
    /// scale service linearly; 1 KB is the base).
    pub fn effective_service_ms(&self) -> f64 {
        self.tenants
            .iter()
            .map(|t| t.demand_fraction * self.mean_service_ms * f64::from(t.value_bytes) / 1024.0)
            .sum()
    }

    /// Fleet capacity in requests/second at the tenant-demand-weighted
    /// mean service time.
    pub fn capacity(&self) -> f64 {
        self.servers as f64 * self.server_concurrency as f64 * 1000.0 / self.effective_service_ms()
    }

    /// Total offered arrival rate in requests/second: the `offered_rate`
    /// override when set, else the configured utilization of
    /// [`MultiTenantConfig::capacity`].
    pub fn total_arrival_rate(&self) -> f64 {
        if let Some(rate) = self.offered_rate {
            return rate;
        }
        self.utilization * self.capacity()
    }

    /// The configuration of tenant `i` running *alone* on the same fleet
    /// at its own arrival rate: the isolation baseline for
    /// slowdown-vs-isolated fairness accounting. The single remaining
    /// tenant takes demand fraction 1, and the utilization is rescaled so
    /// the isolated arrival rate equals the shared run's rate for that
    /// tenant; request counts scale by the demand fraction so baselines
    /// cost proportionally.
    ///
    /// # Panics
    ///
    /// Panics when `i` is out of range.
    pub fn isolated(&self, i: usize) -> MultiTenantConfig {
        let tenant = self.tenants[i].clone();
        // rate_i = U·C/eff · f_i  must equal  U'·C/s_i, so U' = U·f_i·s_i/eff.
        let s_i = self.mean_service_ms * f64::from(tenant.value_bytes) / 1024.0;
        let utilization =
            self.utilization * tenant.demand_fraction * s_i / self.effective_service_ms();
        let total = ((self.total_requests as f64 * tenant.demand_fraction) as u64).max(1_000);
        let warmup = ((self.warmup_requests as f64 * tenant.demand_fraction) as u64)
            .min(total.saturating_sub(1));
        MultiTenantConfig {
            utilization,
            // An absolute-rate override scales directly: the tenant keeps
            // its shared-run arrival rate when running alone.
            offered_rate: self.offered_rate.map(|r| r * tenant.demand_fraction),
            total_requests: total,
            warmup_requests: warmup,
            tenants: vec![TenantSpec {
                demand_fraction: 1.0,
                ..tenant
            }],
            ..self.clone()
        }
    }

    /// Validate invariants.
    ///
    /// # Panics
    ///
    /// Panics when a parameter is out of range.
    pub fn validate(&self) {
        assert!(self.servers >= self.replication_factor, "too few servers");
        assert!(self.clients >= 1, "need clients");
        assert!(self.server_concurrency >= 1, "need execution slots");
        assert!(self.mean_service_ms > 0.0, "service time must be positive");
        assert!(
            self.utilization > 0.0 && self.utilization < 1.0,
            "utilization must be in (0,1)"
        );
        if let Some(rate) = self.offered_rate {
            assert!(
                rate.is_finite() && rate > 0.0,
                "offered rate must be positive and finite"
            );
        }
        assert!(self.keys > 0, "need keys");
        assert!(self.total_requests > 0, "need requests");
        assert!(
            self.warmup_requests < self.total_requests,
            "warm-up swallows the run"
        );
        assert!(!self.tenants.is_empty(), "need at least one tenant");
        for (i, t) in self.tenants.iter().enumerate() {
            assert!(
                !self.tenants[..i].iter().any(|u| u.name == t.name),
                "duplicate tenant name {:?} (channel names must be unique)",
                t.name
            );
        }
        let demand: f64 = self.tenants.iter().map(|t| t.demand_fraction).sum();
        assert!(
            (demand - 1.0).abs() < 1e-9,
            "tenant demand fractions must sum to 1 (got {demand})"
        );
        for t in &self.tenants {
            assert!(t.demand_fraction > 0.0, "tenant {} has no demand", t.name);
            assert!(t.value_bytes > 0, "tenant {} has empty values", t.name);
            assert!(
                t.zipf_theta > 0.0 && t.zipf_theta < 1.0,
                "tenant {} zipf theta must be in (0,1) exclusive",
                t.name
            );
        }
        self.c3.validate();
    }
}

/// The scenario's event alphabet.
#[derive(Clone, Copy, Debug)]
#[allow(missing_docs)]
pub enum MtEvent {
    /// A tenant's Poisson source fires: create a request and reschedule.
    Arrive { tenant: usize },
    /// A request reaches its server.
    ServerArrive { req: u64 },
    /// A request finishes executing at its server.
    ServiceDone {
        server: usize,
        req: u64,
        service_time: Nanos,
    },
    /// A response reaches its client.
    ClientReceive { req: u64 },
    /// A client retries the backlog of one replica group.
    RetryBacklog { client: usize, group: usize },
    /// Dynamic Snitching selectors recompute their scores.
    SnitchTick,
}

#[derive(Clone, Copy, Debug)]
struct MtRequest {
    tenant: u16,
    client: u16,
    group: u16,
    server: u16,
    created: Nanos,
    sent_at: Nanos,
    measured: bool,
}

struct MtServer {
    queue: VecDeque<u64>,
    inflight: usize,
}

struct MtClient {
    /// `None` for the Oracle, which reads global server state instead.
    selector: Option<Box<dyn ReplicaSelector>>,
    backlogs: Vec<BacklogQueue<u64>>,
    /// Pending `RetryBacklog` timer per replica group, cancelled when a
    /// response drains the backlog first (so no dead retry events fire).
    retry_timer: Vec<Option<TimerId>>,
}

struct TenantState {
    spec: TenantSpec,
    keys: ScrambledZipfian,
    arrivals: PoissonArrivals,
    rng: SmallRng,
}

/// The multi-tenant scenario, driven by the engine's [`ScenarioRunner`].
pub struct MultiTenantScenario {
    cfg: MultiTenantConfig,
    tenants: Vec<TenantState>,
    servers: Vec<MtServer>,
    clients: Vec<MtClient>,
    groups: Vec<Vec<usize>>,
    requests: Vec<MtRequest>,
    feedbacks: Vec<Feedback>,
    wl_rng: SmallRng,
    srv_rng: SmallRng,
    generated: u64,
    dead_retries: u64,
    /// Flight recorder for the request lifecycle trace; purely
    /// observational — a run's fingerprint is identical with and without.
    recorder: Option<Recorder>,
}

impl MultiTenantScenario {
    /// Build the scenario, resolving the strategy through `registry`.
    ///
    /// # Panics
    ///
    /// Panics when the configured strategy is not in the registry.
    pub fn new(cfg: MultiTenantConfig, registry: &StrategyRegistry) -> Self {
        cfg.validate();
        let seeds = SeedSeq::new(cfg.seed);
        let wl_rng = seeds.workload_rng();
        let srv_rng = seeds.service_rng(21);

        let mut c3 = cfg.c3;
        c3.concurrency_weight = cfg.clients as f64;

        let total_rate = cfg.total_arrival_rate();
        let tenants: Vec<TenantState> = cfg
            .tenants
            .iter()
            .enumerate()
            .map(|(i, spec)| TenantState {
                spec: spec.clone(),
                keys: ScrambledZipfian::new(cfg.keys, cfg.keys, spec.zipf_theta),
                arrivals: PoissonArrivals::new(total_rate * spec.demand_fraction),
                rng: SmallRng::seed_from_u64(seeds.tenant_seed(i as u64)),
            })
            .collect();

        let groups: Vec<Vec<usize>> = (0..cfg.servers)
            .map(|g| {
                (0..cfg.replication_factor)
                    .map(|k| (g + k) % cfg.servers)
                    .collect()
            })
            .collect();

        let servers = (0..cfg.servers)
            .map(|_| MtServer {
                queue: VecDeque::new(),
                inflight: 0,
            })
            .collect();

        let clients: Vec<MtClient> = (0..cfg.clients)
            .map(|i| {
                let ctx = SelectorCtx {
                    servers: cfg.servers,
                    c3,
                    seed: seeds.client_seed(i as u64),
                    now: Nanos::ZERO,
                };
                let selector = match registry
                    .build(&cfg.strategy, &ctx)
                    .unwrap_or_else(|e| panic!("{e}"))
                {
                    BuiltSelector::Selector(s) => Some(s),
                    BuiltSelector::Oracle => None,
                };
                MtClient {
                    selector,
                    backlogs: (0..cfg.servers).map(|_| BacklogQueue::new()).collect(),
                    retry_timer: vec![None; cfg.servers],
                }
            })
            .collect();

        Self {
            tenants,
            servers,
            clients,
            groups,
            requests: Vec::with_capacity(cfg.total_requests as usize),
            feedbacks: Vec::with_capacity(cfg.total_requests as usize),
            wl_rng,
            srv_rng,
            generated: 0,
            dead_retries: 0,
            recorder: None,
            cfg,
        }
    }

    /// Attach a flight recorder: issue → decision → send → feedback →
    /// complete events flow into its ring buffer. Recording is purely
    /// observational; results are bit-identical with and without it.
    pub fn set_recorder(&mut self, recorder: Recorder) {
        self.recorder = Some(recorder);
    }

    /// Detach the flight recorder, if any.
    pub fn take_recorder(&mut self) -> Option<Recorder> {
        self.recorder.take()
    }

    /// `RetryBacklog` events that fired against an already-drained
    /// backlog. Draining cancels the pending timer, so this stays zero —
    /// asserted regression-style across the scenario library.
    pub fn dead_events(&self) -> u64 {
        self.dead_retries
    }

    /// The config in force.
    pub fn config(&self) -> &MultiTenantConfig {
        &self.cfg
    }

    fn service_time(&mut self, tenant: usize) -> Nanos {
        let scale = f64::from(self.tenants[tenant].spec.value_bytes) / 1024.0;
        Nanos::from_millis_f64(exp_sample(
            &mut self.srv_rng,
            self.cfg.mean_service_ms * scale,
        ))
    }

    fn on_arrive(
        &mut self,
        tenant: usize,
        now: Nanos,
        engine: &mut EventQueue<MtEvent>,
        metrics: &RunMetrics,
    ) {
        if self.generated >= self.cfg.total_requests {
            return;
        }
        let issue_index = self.generated;
        self.generated += 1;
        let client = self.wl_rng.gen_range(0..self.cfg.clients);
        let key = {
            let t = &mut self.tenants[tenant];
            t.keys.sample(&mut t.rng)
        };
        let group = (key % self.cfg.servers as u64) as usize;
        let req = self.requests.len() as u64;
        self.requests.push(MtRequest {
            tenant: tenant as u16,
            client: client as u16,
            group: group as u16,
            server: u16::MAX,
            created: now,
            sent_at: Nanos::ZERO,
            measured: metrics.past_warmup(issue_index),
        });
        self.feedbacks.push(Feedback::new(0, Nanos::ZERO));
        if let Some(rec) = &mut self.recorder {
            rec.record(now, req, TracePoint::Issue);
        }
        self.try_dispatch(req, now, engine);
        if self.generated < self.cfg.total_requests {
            let t = &mut self.tenants[tenant];
            let gap = t.arrivals.next_gap(&mut t.rng);
            engine.schedule_in(gap, MtEvent::Arrive { tenant });
        }
    }

    /// Record a selection decision into the flight recorder: what the
    /// client's selector saw for every candidate (chosen replica first, so
    /// the [`TRACE_GROUP`] truncation can never drop it) plus the
    /// ground-truth pending depth at each server. `chosen == None` marks a
    /// backpressure verdict. No-op unless an event-recording recorder is
    /// attached.
    fn record_decision(
        &mut self,
        req: u64,
        client_id: usize,
        chosen: Option<usize>,
        group_id: usize,
        now: Nanos,
    ) {
        if self.recorder.as_ref().is_none_or(|r| r.capacity() == 0) {
            return;
        }
        let mut snaps = [ReplicaSnap::empty(); TRACE_GROUP];
        let mut len = 0usize;
        let ordered = chosen.into_iter().chain(
            self.groups[group_id]
                .iter()
                .copied()
                .filter(|&s| Some(s) != chosen),
        );
        for server in ordered.take(TRACE_GROUP) {
            let pending = (self.servers[server].inflight + self.servers[server].queue.len()) as u32;
            let view = self.clients[client_id]
                .selector
                .as_deref()
                .and_then(|sel| sel.replica_view(server));
            snaps[len] = match view {
                Some(view) => ReplicaSnap::from_view(server as u32, &view, pending),
                // The Oracle exposes no view; keep the ground truth so
                // queue-regret still works where score-regret cannot.
                None => ReplicaSnap::blind(server as u32, pending),
            };
            len += 1;
        }
        let rec = self.recorder.as_mut().expect("checked above");
        rec.record(
            now,
            req,
            TracePoint::Decision {
                chosen: chosen.map_or(NO_SERVER, |c| c as u32),
                group_len: len as u8,
                group: snaps,
            },
        );
    }

    fn try_dispatch(&mut self, req: u64, now: Nanos, engine: &mut EventQueue<MtEvent>) {
        let (client_id, group_id) = {
            let r = &self.requests[req as usize];
            (r.client as usize, r.group as usize)
        };

        // Oracle path: perfect knowledge of instantaneous queue depths.
        if self.clients[client_id].selector.is_none() {
            let server = self.oracle_pick(group_id);
            self.record_decision(req, client_id, Some(server), group_id, now);
            self.send(req, server, now, engine);
            return;
        }

        let selection = {
            let group = &self.groups[group_id];
            let sel = self.clients[client_id].selector.as_mut().expect("selector");
            sel.select(group, now)
        };
        match selection {
            Selection::Server(server) => {
                self.record_decision(req, client_id, Some(server), group_id, now);
                self.send(req, server, now, engine)
            }
            Selection::Backpressure { retry_at } => {
                self.record_decision(req, client_id, None, group_id, now);
                let client = &mut self.clients[client_id];
                client.backlogs[group_id].push(req);
                if client.retry_timer[group_id].is_none() {
                    let at = retry_at.max(now + Nanos(1));
                    let timer = engine.schedule_cancellable(
                        at,
                        MtEvent::RetryBacklog {
                            client: client_id,
                            group: group_id,
                        },
                    );
                    client.retry_timer[group_id] = Some(timer);
                }
            }
        }
    }

    fn oracle_pick(&self, group_id: usize) -> usize {
        *self.groups[group_id]
            .iter()
            .min_by_key(|&&s| self.servers[s].inflight + self.servers[s].queue.len())
            .expect("non-empty group")
    }

    fn send(&mut self, req: u64, server: usize, now: Nanos, engine: &mut EventQueue<MtEvent>) {
        {
            let r = &mut self.requests[req as usize];
            r.server = server as u16;
            r.sent_at = now;
        }
        let client_id = self.requests[req as usize].client as usize;
        if let Some(sel) = self.clients[client_id].selector.as_mut() {
            sel.on_send(server, now);
        }
        // No Send record: every send here is implied by the `Decision`
        // event recorded at the same timestamp (attribution folds them).
        engine.schedule_in(self.cfg.one_way_latency, MtEvent::ServerArrive { req });
    }

    fn on_server_arrive(&mut self, req: u64, engine: &mut EventQueue<MtEvent>) {
        let server = self.requests[req as usize].server as usize;
        if self.servers[server].inflight < self.cfg.server_concurrency {
            self.servers[server].inflight += 1;
            let st = self.service_time(self.requests[req as usize].tenant as usize);
            engine.schedule_in(
                st,
                MtEvent::ServiceDone {
                    server,
                    req,
                    service_time: st,
                },
            );
        } else {
            self.servers[server].queue.push_back(req);
        }
    }

    fn on_service_done(
        &mut self,
        server: usize,
        req: u64,
        service_time: Nanos,
        now: Nanos,
        engine: &mut EventQueue<MtEvent>,
        metrics: &mut RunMetrics,
    ) {
        metrics.record_service(server, now);
        self.servers[server].inflight -= 1;
        if let Some(next) = self.servers[server].queue.pop_front() {
            self.servers[server].inflight += 1;
            let st = self.service_time(self.requests[next as usize].tenant as usize);
            engine.schedule_in(
                st,
                MtEvent::ServiceDone {
                    server,
                    req: next,
                    service_time: st,
                },
            );
        }
        let pending = (self.servers[server].inflight + self.servers[server].queue.len()) as u32;
        self.feedbacks[req as usize] = Feedback::new(pending, service_time);
        engine.schedule_in(self.cfg.one_way_latency, MtEvent::ClientReceive { req });
    }

    fn on_client_receive(
        &mut self,
        req: u64,
        now: Nanos,
        engine: &mut EventQueue<MtEvent>,
        metrics: &mut RunMetrics,
    ) {
        let r = self.requests[req as usize];
        let client_id = r.client as usize;
        let server = r.server as usize;
        if let Some(sel) = self.clients[client_id].selector.as_mut() {
            sel.on_response(
                server,
                &ResponseInfo {
                    response_time: now.saturating_sub(r.sent_at),
                    feedback: Some(self.feedbacks[req as usize]),
                },
                now,
            );
        }
        metrics.record_completion(
            ChannelId::new(r.tenant as usize),
            now,
            now.saturating_sub(r.created),
            r.measured,
        );
        if let Some(rec) = &mut self.recorder {
            let fb = self.feedbacks[req as usize];
            rec.record(
                now,
                req,
                TracePoint::Feedback {
                    server: server as u32,
                    queue: fb.queue_size,
                    service_ns: fb.service_time.as_nanos(),
                },
            );
            // Warm-up requests get no Complete event, so they never join
            // into attribution rows — matching the latency channels.
            if r.measured {
                rec.record(
                    now,
                    req,
                    TracePoint::Complete {
                        latency_ns: now.saturating_sub(r.created).as_nanos(),
                    },
                );
            }
        }
        // A response may free rate for the groups containing this server.
        let rf = self.cfg.replication_factor;
        let n = self.cfg.servers;
        for k in 0..rf {
            let group_id = (server + n - k) % n;
            if !self.clients[client_id].backlogs[group_id].is_empty() {
                self.on_retry(client_id, group_id, now, engine, false);
            }
        }
    }

    fn on_retry(
        &mut self,
        client_id: usize,
        group_id: usize,
        now: Nanos,
        engine: &mut EventQueue<MtEvent>,
        from_timer: bool,
    ) {
        if from_timer {
            // The timer owning this event has fired; forget its handle.
            self.clients[client_id].retry_timer[group_id] = None;
            if self.clients[client_id].backlogs[group_id].is_empty() {
                // Unreachable since draining cancels the timer; counted so
                // a regression back to fire-and-filter is visible.
                self.dead_retries += 1;
                return;
            }
        } else if let Some(timer) = self.clients[client_id].retry_timer[group_id].take() {
            // A response beat the retry timer to this backlog: the drain
            // below supersedes it, so the timer must not fire dead.
            engine.cancel(timer);
        }
        loop {
            let Some(&req) = self.clients[client_id].backlogs[group_id].peek() else {
                return;
            };
            let selection = {
                let group = &self.groups[group_id];
                let sel = self.clients[client_id]
                    .selector
                    .as_mut()
                    .expect("backpressure implies a selector");
                sel.select(group, now)
            };
            match selection {
                Selection::Server(server) => {
                    self.record_decision(req, client_id, Some(server), group_id, now);
                    self.clients[client_id].backlogs[group_id].pop();
                    self.send(req, server, now, engine);
                }
                Selection::Backpressure { retry_at } => {
                    let client = &mut self.clients[client_id];
                    if client.retry_timer[group_id].is_none() {
                        let at = retry_at.max(now + Nanos(1));
                        let timer = engine.schedule_cancellable(
                            at,
                            MtEvent::RetryBacklog {
                                client: client_id,
                                group: group_id,
                            },
                        );
                        client.retry_timer[group_id] = Some(timer);
                    }
                    return;
                }
            }
        }
    }

    /// Feed Dynamic Snitching selectors their periodic recompute (the
    /// cluster does this through gossip; here every node idles at baseline
    /// iowait, so only the latency reservoir matters).
    fn on_snitch_tick(&mut self, now: Nanos, engine: &mut EventQueue<MtEvent>) {
        let servers = self.cfg.servers;
        for client in &mut self.clients {
            if let Some(snitch) = client
                .selector
                .as_mut()
                .and_then(|s| s.as_any_mut())
                .and_then(|any| any.downcast_mut::<SnitchSelector>())
            {
                for peer in 0..servers {
                    snitch.snitch_mut().record_iowait(peer, 0.02);
                }
                snitch.snitch_mut().recompute(now);
            }
        }
        engine.schedule_in(self.cfg.snitch_tick, MtEvent::SnitchTick);
    }
}

impl Scenario for MultiTenantScenario {
    type Event = MtEvent;

    fn channels(&self) -> ChannelSet {
        ChannelSet::of(self.cfg.tenants.iter().map(|t| t.name.clone()))
    }

    fn start(&mut self, engine: &mut EventQueue<MtEvent>) {
        for tenant in 0..self.tenants.len() {
            let t = &mut self.tenants[tenant];
            let jitter = t.arrivals.next_gap(&mut t.rng);
            engine.schedule(jitter, MtEvent::Arrive { tenant });
        }
        engine.schedule(self.cfg.snitch_tick, MtEvent::SnitchTick);
    }

    fn handle(
        &mut self,
        event: MtEvent,
        now: Nanos,
        engine: &mut EventQueue<MtEvent>,
        metrics: &mut RunMetrics,
    ) {
        match event {
            MtEvent::Arrive { tenant } => self.on_arrive(tenant, now, engine, metrics),
            MtEvent::ServerArrive { req } => self.on_server_arrive(req, engine),
            MtEvent::ServiceDone {
                server,
                req,
                service_time,
            } => self.on_service_done(server, req, service_time, now, engine, metrics),
            MtEvent::ClientReceive { req } => self.on_client_receive(req, now, engine, metrics),
            MtEvent::RetryBacklog { client, group } => {
                self.on_retry(client, group, now, engine, true)
            }
            MtEvent::SnitchTick => self.on_snitch_tick(now, engine),
        }
    }

    fn is_done(&self, metrics: &RunMetrics) -> bool {
        metrics.total_completions() >= self.cfg.total_requests
    }
}

/// Run each tenant's isolation baseline (see
/// [`MultiTenantConfig::isolated`]), in tenant order — the shape
/// [`ScenarioReport::slowdown_vs_isolated`] and
/// [`ScenarioReport::jain_fairness`] take.
pub fn run_isolated(cfg: &MultiTenantConfig, registry: &StrategyRegistry) -> Vec<ScenarioReport> {
    (0..cfg.tenants.len())
        .map(|i| run(cfg.isolated(i), registry, RunOptions::default()).report)
        .collect()
}

/// Run a multi-tenant config to completion and report per-tenant
/// channels. Attach a recorder via [`RunOptions::recorded`] to capture
/// the request lifecycle trace and decision snapshots; the report is
/// bit-identical either way.
pub fn run(cfg: MultiTenantConfig, registry: &StrategyRegistry, options: RunOptions) -> RunOutput {
    let runner = ScenarioRunner::new(cfg.seed)
        .with_warmup(cfg.warmup_requests)
        .with_exact_latency_if(cfg.exact_latency);
    let servers = cfg.servers;
    let load_window = cfg.load_window;
    let strategy = cfg.strategy.clone();
    let seed = cfg.seed;
    let mut scenario = MultiTenantScenario::new(cfg, registry);
    if let Some(rec) = options.recorder {
        scenario.set_recorder(rec);
    }
    let (metrics, stats) = runner.run(&mut scenario, servers, load_window);
    let recorder = scenario.take_recorder();
    let report =
        ScenarioReport::from_metrics(super::MULTI_TENANT, &strategy, seed, &metrics, &stats)
            .with_dead_events(scenario.dead_events());
    RunOutput { report, recorder }
}

/// Deprecated wrapper over [`run`] with a recorder attached.
#[deprecated(note = "use run(cfg, registry, RunOptions::recorded(recorder)) instead")]
pub fn run_recorded(
    cfg: MultiTenantConfig,
    registry: &StrategyRegistry,
    recorder: Recorder,
) -> (ScenarioReport, Recorder) {
    run(cfg, registry, RunOptions::recorded(recorder)).expect_recorded()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario_registry;

    fn small(strategy: Strategy) -> MultiTenantConfig {
        MultiTenantConfig {
            total_requests: 6_000,
            warmup_requests: 500,
            strategy,
            seed: 3,
            ..MultiTenantConfig::default()
        }
    }

    #[test]
    fn tenants_get_their_own_channels() {
        let report = run(
            small(Strategy::c3()),
            &scenario_registry(),
            RunOptions::default(),
        )
        .report;
        assert_eq!(report.channels.len(), 3);
        assert_eq!(report.headline().name, "interactive");
        assert!(report.channel("analytics").is_some());
        assert!(report.channel("bulk").is_some());
        assert_eq!(report.total_completions(), 6_000 - 500);
        for c in &report.channels {
            assert!(c.completions > 0, "tenant {} starved", c.name);
        }
    }

    #[test]
    fn heavier_values_cost_more_latency() {
        let report = run(
            small(Strategy::c3()),
            &scenario_registry(),
            RunOptions::default(),
        )
        .report;
        let interactive = report.channel("interactive").unwrap().summary.p50_ns;
        let bulk = report.channel("bulk").unwrap().summary.p50_ns;
        assert!(
            bulk > interactive,
            "8 KB values must out-wait 1 KB values: {bulk} vs {interactive}"
        );
    }

    #[test]
    fn runs_are_deterministic() {
        let a = run(
            small(Strategy::c3()),
            &scenario_registry(),
            RunOptions::default(),
        )
        .report;
        let b = run(
            small(Strategy::c3()),
            &scenario_registry(),
            RunOptions::default(),
        )
        .report;
        assert_eq!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn oracle_and_snitch_run_on_this_frontend() {
        for strategy in [Strategy::oracle(), Strategy::dynamic_snitching()] {
            let report = run(
                small(strategy.clone()),
                &scenario_registry(),
                RunOptions::default(),
            )
            .report;
            assert_eq!(
                report.total_completions(),
                5_500,
                "strategy {strategy} must complete"
            );
        }
    }

    #[test]
    fn isolated_config_preserves_the_tenant_arrival_rate() {
        let cfg = small(Strategy::c3());
        let shared_rate = cfg.total_arrival_rate();
        for (i, tenant) in cfg.tenants.iter().enumerate() {
            let iso = cfg.isolated(i);
            iso.validate();
            assert_eq!(iso.tenants.len(), 1);
            assert_eq!(iso.tenants[0].name, tenant.name);
            let want = shared_rate * tenant.demand_fraction;
            let got = iso.total_arrival_rate();
            assert!(
                (got - want).abs() / want < 1e-9,
                "tenant {}: isolated rate {got} != shared share {want}",
                tenant.name
            );
        }
    }

    #[test]
    fn fairness_metrics_come_out_of_isolated_baselines() {
        let cfg = small(Strategy::c3());
        let reg = scenario_registry();
        let shared = run(cfg.clone(), &reg, RunOptions::default()).report;
        let isolated = run_isolated(&cfg, &reg);
        let slowdowns = shared.slowdown_vs_isolated(&isolated);
        assert_eq!(slowdowns.len(), 3);
        for (name, factor) in &slowdowns {
            assert!(*factor > 0.0, "tenant {name} slowdown {factor}");
        }
        // Sharing a 65%-utilized fleet cannot be free for everyone: at
        // least one tenant's tail must pay something.
        assert!(
            slowdowns.iter().any(|(_, f)| *f > 1.0),
            "no tenant pays for interference? {slowdowns:?}"
        );
        let jain = shared.jain_fairness(&isolated);
        assert!(jain > 1.0 / 3.0 && jain <= 1.0, "Jain {jain} out of range");
    }

    #[test]
    #[should_panic(expected = "demand fractions")]
    fn demand_must_sum_to_one() {
        let mut cfg = small(Strategy::c3());
        cfg.tenants[0].demand_fraction = 0.9;
        cfg.validate();
    }
}
