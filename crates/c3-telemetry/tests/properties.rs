//! Property tests for the flight recorder's ring buffer.
//!
//! The recorder's whole value rests on three promises: it never grows past
//! its capacity (bounded memory on the sim hot path), it evicts strictly
//! oldest-first (so what survives is always a clean time-*suffix* of the
//! run, which is what lets the attribution join treat a surviving `Issue`
//! as proof the whole lifecycle survived), and at capacity 0 it records
//! nothing at all (the disabled path the fingerprint goldens run against).

use c3_core::Nanos;
use c3_telemetry::{Recorder, TracePoint};
use proptest::prelude::*;

/// Replay `timestamps` (made non-decreasing by prefix-max, the way any
/// driver clock behaves) into a recorder of `capacity` and return it
/// alongside the full event log it was fed.
fn replay(capacity: usize, timestamps: &[u64]) -> (Recorder, Vec<(u64, u64)>) {
    let mut rec = Recorder::new(capacity);
    let mut fed = Vec::with_capacity(timestamps.len());
    let mut clock = 0u64;
    for (i, &t) in timestamps.iter().enumerate() {
        clock = clock.max(t);
        let request = (i / 3) as u64; // ~3 lifecycle points per request
        rec.record(Nanos(clock), request, TracePoint::Issue);
        fed.push((clock, request));
    }
    (rec, fed)
}

proptest! {
    /// The ring never holds more than `capacity` events, and accounts for
    /// every eviction: held + dropped = fed.
    #[test]
    fn ring_is_capacity_bounded(
        capacity in 1usize..128,
        timestamps in proptest::collection::vec(0u64..1_000_000, 0..400),
    ) {
        let (rec, fed) = replay(capacity, &timestamps);
        prop_assert!(rec.len() <= capacity);
        prop_assert_eq!(rec.len(), fed.len().min(capacity));
        prop_assert_eq!(rec.len() as u64 + rec.dropped(), fed.len() as u64);
    }

    /// Drop-oldest: the survivors are exactly the newest `len` events that
    /// were fed, in feed order — a time-suffix, never a gap.
    #[test]
    fn ring_drops_oldest_first(
        capacity in 1usize..64,
        timestamps in proptest::collection::vec(0u64..1_000_000, 0..300),
    ) {
        let (rec, fed) = replay(capacity, &timestamps);
        let survivors: Vec<(u64, u64)> = rec
            .events()
            .map(|ev| (ev.at.as_nanos(), ev.request))
            .collect();
        let expected = &fed[fed.len() - rec.len()..];
        prop_assert_eq!(survivors.as_slice(), expected);
    }

    /// Per-request timestamps come back out monotone (oldest first): the
    /// ring's iteration order never reorders a request's lifecycle.
    #[test]
    fn per_request_timestamps_are_monotone(
        capacity in 1usize..64,
        timestamps in proptest::collection::vec(0u64..1_000_000, 0..300),
    ) {
        let (rec, _) = replay(capacity, &timestamps);
        let mut last_by_request: std::collections::HashMap<u64, u64> =
            std::collections::HashMap::new();
        for ev in rec.events() {
            if let Some(&prev) = last_by_request.get(&ev.request) {
                prop_assert!(
                    ev.at.as_nanos() >= prev,
                    "request {} went back in time: {} then {}",
                    ev.request, prev, ev.at.as_nanos(),
                );
            }
            last_by_request.insert(ev.request, ev.at.as_nanos());
        }
    }

    /// Capacity 0 is the disabled path: no events, ever, and no drop
    /// accounting (nothing was admitted to be dropped).
    #[test]
    fn capacity_zero_records_nothing(
        timestamps in proptest::collection::vec(0u64..1_000_000, 0..200),
    ) {
        let (rec, _) = replay(0, &timestamps);
        prop_assert!(rec.is_empty());
        prop_assert_eq!(rec.len(), 0);
        prop_assert_eq!(rec.dropped(), 0);
        prop_assert_eq!(rec.events().count(), 0);
    }
}
