//! # c3-telemetry — flight recorder + tail-latency attribution
//!
//! C3's argument is explanatory: the paper wins by showing *why* tails
//! form (Dynamic Snitching's herd oscillation, queue buildup on stale
//! feedback), not just that p99 moved. This crate is the shared
//! observability layer that lets every backend land with an explanation:
//!
//! - [`Recorder`] — a fixed-capacity, drop-oldest ring buffer of compact
//!   [`TraceEvent`]s covering the request lifecycle (issue → select →
//!   send → feedback → complete) plus per-decision replica snapshots
//!   ([`ReplicaSnap`]: score, EWMA latency/queue, outstanding count,
//!   rate-limiter srate, ground-truth pending depth). It also carries the
//!   throttled per-replica **score trace** (the old `with_score_probe`
//!   path) and named **gauge series** (the live client's `inflight` /
//!   `feedback-lag` health channels), so the repo has exactly one
//!   sampling/reporting path.
//! - [`attribute_tail`] — joins lifecycle events per request and
//!   decomposes each tail-bucket latency into wait-for-permit /
//!   queueing-at-replica / service / **selection regret** (chosen replica
//!   vs best available, measured against *freshly computed* scores so an
//!   interval-frozen strategy cannot grade its own homework), emitted as
//!   a [`TailAttribution`] table per `(scenario, strategy)` cell.
//! - JSONL / CSV export for the `trace_explain` bench bin and nightly
//!   artifacts.
//!
//! Determinism contract: recording is purely observational. A recorder
//! never draws randomness, never schedules events and only reads selector
//! state through read-only snapshots, so a run's `ScenarioReport`
//! fingerprint is bit-identical with and without a recorder attached —
//! pinned by the fingerprint-neutrality goldens. The disabled path is an
//! `Option<&mut Recorder>` branch, not a feature flag. Time is whatever
//! the driver passes in: sim time in `c3-sim` / `c3-cluster` /
//! `c3-scenarios`, wall-clock-since-start in `c3-live`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod attribution;
mod export;
mod process;
mod recorder;

pub use attribution::{attribute_tail, join_requests, Attribution, RequestJoin, TailAttribution};
pub use export::{csv_escape, json_escape};
pub use process::{node_cpu_gauge, node_rss_gauge, sample_process, ProcessSample};
pub use recorder::{
    summarize_gauge, GaugeSeries, GaugeSummary, Recorder, ReplicaSnap, SharedRecorder, TraceEvent,
    TracePoint, NO_SERVER, TRACE_GROUP,
};
