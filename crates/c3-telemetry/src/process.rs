//! Per-process resource sampling for multi-process experiments.
//!
//! A node fleet runs one replica per OS process; attributing memory and
//! CPU to each replica means reading the kernel's per-process accounting,
//! not instrumenting the code. On Linux that is `/proc/<pid>/status`
//! (`VmRSS`) and `/proc/<pid>/stat` (utime + stime); elsewhere sampling
//! degrades to `None` and the gauges simply stay empty. The coordinator
//! polls [`sample_process`] on a timer and lands the results in ordinary
//! recorder gauge channels ([`node_rss_gauge`] / [`node_cpu_gauge`]), so
//! per-node RSS and CPU ride the same reporting path as every other
//! series.

/// One point-in-time resource reading of a process.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ProcessSample {
    /// Resident set size, in kilobytes (`VmRSS`).
    pub rss_kb: u64,
    /// Cumulative user + system CPU time, in milliseconds.
    pub cpu_ms: u64,
}

/// Gauge-series name for one node's resident set size (kB).
pub fn node_rss_gauge(replica: usize) -> String {
    format!("node{replica}-rss-kb")
}

/// Gauge-series name for one node's cumulative CPU time (ms).
pub fn node_cpu_gauge(replica: usize) -> String {
    format!("node{replica}-cpu-ms")
}

/// Sample RSS and CPU of `pid` from procfs. Returns `None` when the
/// process is gone or the platform has no procfs (non-Linux).
pub fn sample_process(pid: u32) -> Option<ProcessSample> {
    if !cfg!(target_os = "linux") {
        return None;
    }
    let status = std::fs::read_to_string(format!("/proc/{pid}/status")).ok()?;
    let rss_kb = status.lines().find_map(|line| {
        let rest = line.strip_prefix("VmRSS:")?;
        rest.split_whitespace().next()?.parse::<u64>().ok()
    })?;
    let stat = std::fs::read_to_string(format!("/proc/{pid}/stat")).ok()?;
    // Field 2 is `(comm)` and may contain spaces; everything after the
    // closing paren is fixed-position. utime and stime are fields 14 and
    // 15 (1-based), i.e. indices 11 and 12 after the paren.
    let after = stat.rsplit_once(") ")?.1;
    let mut fields = after.split_whitespace();
    let utime: u64 = fields.nth(11)?.parse().ok()?;
    let stime: u64 = fields.next()?.parse().ok()?;
    // USER_HZ is 100 on every mainstream Linux config; avoiding libc's
    // sysconf keeps the crate std-only. One tick = 10 ms.
    let cpu_ms = (utime + stime) * 10;
    Some(ProcessSample { rss_kb, cpu_ms })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn samples_our_own_process_on_linux() {
        let Some(sample) = sample_process(std::process::id()) else {
            // Non-Linux hosts have no procfs; that's the only acceptable
            // reason for a miss.
            if cfg!(target_os = "linux") {
                panic!("procfs sampling must work on Linux");
            }
            return;
        };
        assert!(sample.rss_kb > 0, "a running process has resident memory");
        // CPU may legitimately read 0 ms right after start; just ensure
        // the parse path produced a value.
        let again = sample_process(std::process::id()).expect("still alive");
        assert!(again.cpu_ms >= sample.cpu_ms, "CPU time is monotonic");
    }

    #[test]
    fn dead_pids_sample_as_none() {
        // PID 0 is the idle task/scheduler; procfs exposes no status for
        // it from user space, and it is never a spawned child.
        assert_eq!(sample_process(0), None);
    }

    #[test]
    fn gauge_names_are_per_replica() {
        assert_eq!(node_rss_gauge(2), "node2-rss-kb");
        assert_eq!(node_cpu_gauge(0), "node0-cpu-ms");
        assert_ne!(node_rss_gauge(1), node_rss_gauge(3));
    }
}
