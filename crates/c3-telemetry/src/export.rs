//! Hand-rolled JSONL / CSV emitters for attribution tables.
//!
//! The workspace has no serde (offline, shim-only dependencies), so the
//! export format is written by hand exactly like the `BENCH_*.json`
//! artifacts: stable key order, `NaN` serialized as `null`, and one
//! record per line so nightly artifacts stream through `jq`/`grep`.

use crate::attribution::{Attribution, TailAttribution};
use crate::recorder::NO_SERVER;

/// Escape a string for embedding in a JSON double-quoted literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Escape a CSV field (RFC 4180 quoting, only when needed).
pub fn csv_escape(s: &str) -> String {
    if s.contains([',', '"', '\n', '\r']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// A float as a JSON value: `null` when not finite.
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.6}")
    } else {
        "null".to_string()
    }
}

/// A server id as a JSON value: `null` for [`NO_SERVER`].
fn json_server(s: u32) -> String {
    if s == NO_SERVER {
        "null".to_string()
    } else {
        s.to_string()
    }
}

impl Attribution {
    /// One JSON object (single line, stable key order).
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"request\":{},\"latency_ns\":{},\"wait_for_permit_ns\":{},",
                "\"queueing_ns\":{},\"service_ns\":{},\"chosen\":{},",
                "\"backpressured\":{},\"chosen_score\":{},\"chosen_fresh\":{},",
                "\"best_fresh\":{},\"best_server\":{},\"regret\":{},",
                "\"regret_rel\":{},\"queue_regret\":{},\"timeouts\":{},",
                "\"retries\":{},\"hedged\":{},\"hedge_won\":{},",
                "\"hedge_rescued\":{},\"hedge_saved_ns\":{},",
                "\"hedge_waste_ns\":{}}}"
            ),
            self.request,
            self.latency_ns,
            self.wait_for_permit_ns,
            self.queueing_ns,
            self.service_ns,
            json_server(self.chosen),
            self.backpressured,
            json_f64(self.chosen_score),
            json_f64(self.chosen_fresh),
            json_f64(self.best_fresh),
            json_server(self.best_server),
            json_f64(self.regret),
            json_f64(self.regret_rel),
            json_f64(self.queue_regret),
            self.timeouts,
            self.retries,
            self.hedged,
            self.hedge_won,
            self.hedge_rescued,
            self.hedge_saved_ns,
            self.hedge_waste_ns,
        )
    }
}

impl TailAttribution {
    /// CSV header matching [`Attribution::to_csv_row`].
    pub const CSV_HEADER: &'static str = "scenario,strategy,request,latency_ms,\
        wait_for_permit_ms,queueing_ms,service_ms,chosen,backpressured,\
        regret,regret_rel,queue_regret";

    /// JSONL: one `meta` record, then one record per tail request,
    /// worst first.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            concat!(
                "{{\"kind\":\"tail_attribution\",\"scenario\":\"{}\",",
                "\"strategy\":\"{}\",\"quantile\":{},\"threshold_ns\":{},",
                "\"joined\":{},\"tail\":{},\"mean_wait_ns\":{},",
                "\"mean_queueing_ns\":{},\"mean_service_ns\":{},",
                "\"mean_regret\":{},\"mean_regret_rel\":{},",
                "\"mean_queue_regret\":{},\"body_mean_regret_rel\":{},",
                "\"hedges\":{},\"hedge_wins\":{},\"hedge_rescues\":{},",
                "\"mean_hedge_saved_ns\":{},\"mean_hedge_waste_ns\":{},",
                "\"total_timeouts\":{},\"total_retries\":{}}}\n"
            ),
            json_escape(&self.scenario),
            json_escape(&self.strategy),
            self.quantile,
            self.threshold_ns,
            self.joined,
            self.tail.len(),
            json_f64(self.mean_wait_ns),
            json_f64(self.mean_queueing_ns),
            json_f64(self.mean_service_ns),
            json_f64(self.mean_regret),
            json_f64(self.mean_regret_rel),
            json_f64(self.mean_queue_regret),
            json_f64(self.body_mean_regret_rel),
            self.hedges,
            self.hedge_wins,
            self.hedge_rescues,
            json_f64(self.mean_hedge_saved_ns),
            json_f64(self.mean_hedge_waste_ns),
            self.total_timeouts,
            self.total_retries,
        ));
        for row in &self.tail {
            out.push_str(&format!(
                "{{\"kind\":\"tail_request\",\"scenario\":\"{}\",\"strategy\":\"{}\",{}\n",
                json_escape(&self.scenario),
                json_escape(&self.strategy),
                row.to_json().split_at(1).1, // merge into one object
            ));
        }
        out
    }

    /// CSV rows (no header; see [`Self::CSV_HEADER`]), worst first.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        for r in &self.tail {
            out.push_str(&format!(
                "{},{},{},{:.3},{:.3},{:.3},{:.3},{},{},{},{},{}\n",
                csv_escape(&self.scenario),
                csv_escape(&self.strategy),
                r.request,
                r.latency_ns as f64 / 1e6,
                r.wait_for_permit_ns as f64 / 1e6,
                r.queueing_ns as f64 / 1e6,
                r.service_ns as f64 / 1e6,
                if r.chosen == NO_SERVER {
                    "-".to_string()
                } else {
                    r.chosen.to_string()
                },
                r.backpressured,
                if r.regret.is_finite() {
                    format!("{:.4}", r.regret)
                } else {
                    "-".to_string()
                },
                if r.regret_rel.is_finite() {
                    format!("{:.4}", r.regret_rel)
                } else {
                    "-".to_string()
                },
                if r.queue_regret.is_finite() {
                    format!("{:.1}", r.queue_regret)
                } else {
                    "-".to_string()
                },
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes() {
        assert_eq!(json_escape("a\"b\\c\n"), "a\\\"b\\\\c\\n");
        assert_eq!(csv_escape("plain"), "plain");
        assert_eq!(csv_escape("a,b\"c"), "\"a,b\"\"c\"");
    }

    #[test]
    fn jsonl_merges_rows_into_flat_objects() {
        let t = TailAttribution {
            scenario: "s".into(),
            strategy: "C3".into(),
            quantile: 0.99,
            threshold_ns: 10,
            joined: 1,
            tail: vec![Attribution {
                request: 1,
                latency_ns: 10,
                wait_for_permit_ns: 1,
                queueing_ns: 9,
                service_ns: 0,
                chosen: 2,
                backpressured: false,
                chosen_score: 1.0,
                chosen_fresh: 1.0,
                best_fresh: 1.0,
                best_server: 2,
                regret: 0.0,
                regret_rel: 0.0,
                queue_regret: f64::NAN,
                timeouts: 0,
                retries: 0,
                hedged: true,
                hedge_won: true,
                hedge_rescued: false,
                hedge_saved_ns: 5,
                hedge_waste_ns: 3,
            }],
            mean_wait_ns: 1.0,
            mean_queueing_ns: 9.0,
            mean_service_ns: 0.0,
            mean_regret: 0.0,
            mean_regret_rel: 0.0,
            mean_queue_regret: f64::NAN,
            body_mean_regret_rel: f64::NAN,
            hedges: 1,
            hedge_wins: 1,
            hedge_rescues: 0,
            mean_hedge_saved_ns: 5.0,
            mean_hedge_waste_ns: 3.0,
            total_timeouts: 0,
            total_retries: 0,
        };
        let jsonl = t.to_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"kind\":\"tail_attribution\""));
        assert!(lines[0].contains("\"mean_queue_regret\":null"));
        assert!(lines[1].starts_with("{\"kind\":\"tail_request\""));
        assert!(lines[1].contains("\"queue_regret\":null"));
        assert!(lines[1].ends_with('}'));
        let csv = t.to_csv();
        assert!(csv.starts_with("s,C3,1,"));
    }
}
