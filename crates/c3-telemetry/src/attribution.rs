//! Tail-latency attribution: join lifecycle events per request and
//! decompose each tail-bucket latency into its mechanisms.
//!
//! The decomposition per request:
//!
//! - **wait-for-permit** — issue → first send: time parked behind C3's
//!   rate-limiter backpressure (or a driver backlog). Zero for strategies
//!   that never hold a request.
//! - **service** — the server-reported execution time piggybacked on the
//!   response (exact, from [`TracePoint::Feedback`]).
//! - **queueing-at-replica** — the remainder (latency − wait − service):
//!   time spent in the replica's queue plus the constant network round
//!   trip. Under a blackout this is where the tail lives.
//! - **selection regret** — how much worse the chosen replica looked than
//!   the best available candidate *under freshly computed scores* at
//!   decision time: `chosen.fresh_score − min(fresh_score)`. A strategy
//!   that always picks the arg-min of its own (possibly stale) view has
//!   zero regret against itself by construction, which is exactly the
//!   Fig. 2 failure mode — so regret is measured against fresh evidence
//!   ([`c3_core::ReplicaView::fresh_score`]), plus a strategy-agnostic
//!   **queue regret** in ground-truth pending-request units when the
//!   driver can see replica queues (sim backends).

use std::collections::HashMap;

use c3_core::Nanos;

use crate::recorder::{ReplicaSnap, TraceEvent, TracePoint, NO_SERVER};

/// Relative regret denominators are floored at 1.0 score units (≈ 1 ms
/// for both C3's and Dynamic Snitching's latency-shaped scores) so a
/// near-zero best score cannot inflate the ratio.
const REL_FLOOR: f64 = 1.0;

/// A request's lifecycle events, joined.
#[derive(Clone, Debug, Default)]
pub struct RequestJoin {
    /// Driver request id.
    pub request: u64,
    /// When the client issued it.
    pub issue_at: Option<Nanos>,
    /// When the (final, successful) selection happened.
    pub decision_at: Option<Nanos>,
    /// Whether any selection attempt backpressured.
    pub backpressured: bool,
    /// The chosen replica's decision snapshot.
    pub chosen: Option<ReplicaSnap>,
    /// Best available fresh score across the snapshotted group.
    pub best_fresh: f64,
    /// Server holding `best_fresh`.
    pub best_server: u32,
    /// Smallest ground-truth pending depth across the group
    /// ([`NO_SERVER`] when unknown).
    pub min_pending: u32,
    /// First time the request went on the wire.
    pub send_at: Option<Nanos>,
    /// Wire sends (speculative retries and read repair add more).
    pub sends: u32,
    /// Server feedback `(queue, service_ns)` — the chosen server's when
    /// available, else the first seen.
    pub feedback: Option<(u32, u64)>,
    /// End-to-end latency, set on completion.
    pub latency_ns: Option<u64>,
    /// When the request completed (driver time) — anchors the hedge
    /// benefit computation.
    pub complete_at: Option<Nanos>,
    /// Deadline expirations observed.
    pub timeouts: u32,
    /// Retry re-dispatches observed.
    pub retries: u32,
    /// When the hedge duplicate went on the wire.
    pub hedge_at: Option<Nanos>,
    /// Whether the hedge duplicate's response completed the request.
    pub hedge_won: bool,
    /// When the losing response of a hedge race arrived (and was
    /// discarded); `None` when the loser never responded.
    pub hedge_loss_at: Option<Nanos>,
}

/// One tail request's decomposed latency.
#[derive(Clone, Copy, Debug)]
pub struct Attribution {
    /// Driver request id.
    pub request: u64,
    /// End-to-end latency.
    pub latency_ns: u64,
    /// Issue → first send (rate-limiter/backlog wait).
    pub wait_for_permit_ns: u64,
    /// Remainder: replica queueing + network.
    pub queueing_ns: u64,
    /// Server-reported service time.
    pub service_ns: u64,
    /// Chosen server ([`NO_SERVER`] when the decision fell out of the
    /// ring).
    pub chosen: u32,
    /// Whether the request ever backpressured.
    pub backpressured: bool,
    /// Score the selector ranked the chosen replica with.
    pub chosen_score: f64,
    /// Chosen replica's freshly recomputed score at decision time.
    pub chosen_fresh: f64,
    /// Best available fresh score in the group.
    pub best_fresh: f64,
    /// Server holding `best_fresh`.
    pub best_server: u32,
    /// Selection regret in score units: `chosen_fresh − best_fresh`
    /// (`NaN` when no decision snapshot survived).
    pub regret: f64,
    /// Regret normalized by `max(|best_fresh|, 1.0)` — the
    /// cross-strategy-comparable number (score units differ by strategy).
    pub regret_rel: f64,
    /// Ground-truth regret in pending-request units:
    /// `chosen.pending − min(pending)` (`NaN` when the driver cannot see
    /// replica queues).
    pub queue_regret: f64,
    /// Deadline expirations this request survived.
    pub timeouts: u32,
    /// Retry re-dispatches after timeouts.
    pub retries: u32,
    /// Whether a hedge duplicate was issued.
    pub hedged: bool,
    /// Whether the hedge duplicate won the race.
    pub hedge_won: bool,
    /// Hedge won and the original never responded at all — the duplicate
    /// didn't just shave latency, it rescued the request (the benefit is
    /// unbounded, so `hedge_saved_ns` stays 0 and this flag marks it).
    pub hedge_rescued: bool,
    /// Latency bought back by the winning hedge: the losing response's
    /// arrival minus completion time — how much longer the request would
    /// have taken without the duplicate. 0 when the hedge lost or the
    /// loser never arrived.
    pub hedge_saved_ns: u64,
    /// Duplicate service burned by hedging: the losing response's flight
    /// time (arrival minus its dispatch) — work a replica did for a
    /// result nobody used. 0 when no loser response arrived.
    pub hedge_waste_ns: u64,
}

/// The tail-attribution table of one `(scenario, strategy)` cell.
#[derive(Clone, Debug)]
pub struct TailAttribution {
    /// Scenario name.
    pub scenario: String,
    /// Strategy name.
    pub strategy: String,
    /// Tail quantile the bucket starts at (e.g. 0.99).
    pub quantile: f64,
    /// Latency at that quantile over the joined requests.
    pub threshold_ns: u64,
    /// Completed requests that survived the join (ring drops can orphan
    /// the oldest).
    pub joined: usize,
    /// Tail-bucket rows, worst first.
    pub tail: Vec<Attribution>,
    /// Mean wait-for-permit over the tail bucket, ns.
    pub mean_wait_ns: f64,
    /// Mean replica-queueing over the tail bucket, ns.
    pub mean_queueing_ns: f64,
    /// Mean service time over the tail bucket, ns.
    pub mean_service_ns: f64,
    /// Mean selection regret (score units) over tail rows that carry one.
    pub mean_regret: f64,
    /// Mean normalized regret over the tail bucket.
    pub mean_regret_rel: f64,
    /// Mean ground-truth queue regret over the tail bucket.
    pub mean_queue_regret: f64,
    /// Mean normalized regret over the *body* (below-threshold requests),
    /// for tail-vs-body contrast.
    pub body_mean_regret_rel: f64,
    /// Requests (across the whole cell, not just the tail) that issued a
    /// hedge duplicate.
    pub hedges: usize,
    /// Hedged requests the duplicate won.
    pub hedge_wins: usize,
    /// Hedge wins where the original never responded (rescues).
    pub hedge_rescues: usize,
    /// Mean latency bought back per measurable hedge win, ns (NaN when
    /// none) — the benefit side of the hedging ledger.
    pub mean_hedge_saved_ns: f64,
    /// Mean duplicate service burned per hedged request with a losing
    /// response, ns (NaN when none) — the cost side.
    pub mean_hedge_waste_ns: f64,
    /// Deadline expirations across the cell.
    pub total_timeouts: u64,
    /// Retry re-dispatches across the cell.
    pub total_retries: u64,
}

/// Mean over the finite entries of an iterator (NaN when none).
fn finite_mean(values: impl Iterator<Item = f64>) -> f64 {
    let (mut sum, mut n) = (0.0, 0u64);
    for v in values {
        if v.is_finite() {
            sum += v;
            n += 1;
        }
    }
    if n == 0 {
        f64::NAN
    } else {
        sum / n as f64
    }
}

/// Join raw events into per-request records (completed or not).
pub fn join_requests(events: impl Iterator<Item = TraceEvent>) -> Vec<RequestJoin> {
    let mut map: HashMap<u64, RequestJoin> = HashMap::new();
    let mut order: Vec<u64> = Vec::new();
    for ev in events {
        let join = map.entry(ev.request).or_insert_with(|| {
            order.push(ev.request);
            RequestJoin {
                request: ev.request,
                best_fresh: f64::NAN,
                best_server: NO_SERVER,
                min_pending: NO_SERVER,
                ..RequestJoin::default()
            }
        });
        match ev.point {
            TracePoint::Issue => join.issue_at = Some(ev.at),
            TracePoint::Decision {
                chosen,
                group_len,
                group,
            } => {
                if chosen == NO_SERVER {
                    join.backpressured = true;
                } else {
                    // Keep the decision that actually led to a send: the
                    // last successful one.
                    join.decision_at = Some(ev.at);
                    // A successful decision IS the send on the sim-side
                    // drivers (the wire record is folded into it to keep
                    // the ring traffic down); explicit `Send` events
                    // remain only for sends that happen without their own
                    // decision, e.g. speculative retries.
                    if join.send_at.is_none() {
                        join.send_at = Some(ev.at);
                    }
                    join.sends += 1;
                    let snaps = &group[..group_len as usize];
                    join.chosen = snaps.iter().find(|s| s.server == chosen).copied();
                    join.best_fresh = f64::NAN;
                    join.best_server = NO_SERVER;
                    join.min_pending = NO_SERVER;
                    for s in snaps {
                        let fresh = s.fresh_score as f64;
                        if fresh.is_finite()
                            && !(join.best_fresh.is_finite() && join.best_fresh <= fresh)
                        {
                            join.best_fresh = fresh;
                            join.best_server = s.server;
                        }
                        if s.pending != NO_SERVER && s.pending < join.min_pending {
                            join.min_pending = s.pending;
                        }
                    }
                }
            }
            TracePoint::Send { .. } => {
                if join.send_at.is_none() {
                    join.send_at = Some(ev.at);
                }
                join.sends += 1;
            }
            TracePoint::Feedback {
                server,
                queue,
                service_ns,
            } => {
                let from_chosen = join.chosen.is_some_and(|c| c.server == server);
                if join.feedback.is_none() || from_chosen {
                    join.feedback = Some((queue, service_ns));
                }
            }
            TracePoint::Complete { latency_ns } => {
                join.latency_ns = Some(latency_ns);
                join.complete_at = Some(ev.at);
            }
            TracePoint::Timeout { .. } => join.timeouts += 1,
            // A retry re-enters selection, so its send is counted by the
            // Decision it triggers; this is a pure marker.
            TracePoint::Retry { .. } => join.retries += 1,
            // A hedge duplicate bypasses selection: this IS its wire
            // record (drivers emit HedgeIssue instead of Send for it).
            TracePoint::HedgeIssue { .. } => {
                join.hedge_at = Some(ev.at);
                join.sends += 1;
            }
            TracePoint::HedgeWin { .. } => join.hedge_won = true,
            TracePoint::HedgeLoss { .. } => join.hedge_loss_at = Some(ev.at),
            // Failure-detector transitions are cluster-level, recorded
            // under a sentinel request id; nothing to join per request.
            TracePoint::Evict { .. } | TracePoint::Reinstate { .. } => {}
        }
    }
    // HashMap iteration order is nondeterministic; return first-seen order
    // so the whole pipeline stays reproducible.
    order
        .into_iter()
        .map(|id| map.remove(&id).expect("joined above"))
        .collect()
}

fn attribution_of(join: &RequestJoin) -> Option<Attribution> {
    let latency_ns = join.latency_ns?;
    // Drop-oldest evicts a time-prefix of the ring, so a request whose
    // Issue survived kept its whole lifecycle; one whose Issue fell out is
    // partial (no decision, no wait) and would attribute misleadingly.
    let issue_at = join.issue_at?;
    let wait = match join.send_at {
        Some(send) => send.saturating_sub(issue_at).as_nanos(),
        None => 0,
    }
    .min(latency_ns);
    let service = join
        .feedback
        .map(|(_, s)| s)
        .unwrap_or(0)
        .min(latency_ns - wait);
    let queueing = latency_ns - wait - service;
    let (chosen, chosen_score, chosen_fresh, pending) = match join.chosen {
        Some(snap) => (
            snap.server,
            snap.score as f64,
            snap.fresh_score as f64,
            snap.pending,
        ),
        None => (NO_SERVER, f64::NAN, f64::NAN, NO_SERVER),
    };
    let regret = if chosen_fresh.is_finite() && join.best_fresh.is_finite() {
        chosen_fresh - join.best_fresh
    } else {
        f64::NAN
    };
    let regret_rel = regret / join.best_fresh.abs().max(REL_FLOOR);
    let queue_regret = if pending != NO_SERVER && join.min_pending != NO_SERVER {
        pending as f64 - join.min_pending as f64
    } else {
        f64::NAN
    };
    let hedged = join.hedge_at.is_some();
    let hedge_rescued = join.hedge_won && join.hedge_loss_at.is_none();
    let hedge_saved_ns = if join.hedge_won {
        match (join.hedge_loss_at, join.complete_at) {
            (Some(loss), Some(done)) => loss.saturating_sub(done).as_nanos(),
            _ => 0,
        }
    } else {
        0
    };
    let hedge_waste_ns = match join.hedge_loss_at {
        // Loser's flight: when the hedge won the loser is the original
        // (dispatched at first send); when the original won the loser is
        // the duplicate (dispatched at hedge time).
        Some(loss) => {
            let dispatched = if join.hedge_won {
                join.send_at
            } else {
                join.hedge_at
            };
            dispatched
                .map(|d| loss.saturating_sub(d).as_nanos())
                .unwrap_or(0)
        }
        None => 0,
    };
    Some(Attribution {
        request: join.request,
        latency_ns,
        wait_for_permit_ns: wait,
        queueing_ns: queueing,
        service_ns: service,
        chosen,
        backpressured: join.backpressured,
        chosen_score,
        chosen_fresh,
        best_fresh: join.best_fresh,
        best_server: join.best_server,
        regret,
        regret_rel,
        queue_regret,
        timeouts: join.timeouts,
        retries: join.retries,
        hedged,
        hedge_won: join.hedge_won,
        hedge_rescued,
        hedge_saved_ns,
        hedge_waste_ns,
    })
}

/// Join `events` and attribute the tail bucket at `quantile` (e.g. 0.99).
///
/// The threshold uses the exact order-statistic convention shared with
/// the metrics crate (1-based rank `ceil(q·n)`); the tail bucket is every
/// joined request at or above it, worst first (ties by request id for
/// determinism).
pub fn attribute_tail(
    events: impl Iterator<Item = TraceEvent>,
    scenario: &str,
    strategy: &str,
    quantile: f64,
) -> TailAttribution {
    let joins = join_requests(events);
    let rows: Vec<Attribution> = joins.iter().filter_map(attribution_of).collect();
    let mut latencies: Vec<u64> = rows.iter().map(|r| r.latency_ns).collect();
    latencies.sort_unstable();
    let threshold_ns = if latencies.is_empty() {
        0
    } else {
        let q = quantile.clamp(0.0, 1.0);
        let rank = ((q * latencies.len() as f64).ceil() as usize)
            .max(1)
            .min(latencies.len());
        latencies[rank - 1]
    };
    // Hedging cost/benefit is a cell-level ledger: count it over every
    // joined row before the tail/body split.
    let hedges = rows.iter().filter(|r| r.hedged).count();
    let hedge_wins = rows.iter().filter(|r| r.hedge_won).count();
    let hedge_rescues = rows.iter().filter(|r| r.hedge_rescued).count();
    let mean_hedge_saved_ns = finite_mean(
        rows.iter()
            .filter(|r| r.hedge_saved_ns > 0)
            .map(|r| r.hedge_saved_ns as f64),
    );
    let mean_hedge_waste_ns = finite_mean(
        rows.iter()
            .filter(|r| r.hedge_waste_ns > 0)
            .map(|r| r.hedge_waste_ns as f64),
    );
    let total_timeouts: u64 = rows.iter().map(|r| r.timeouts as u64).sum();
    let total_retries: u64 = rows.iter().map(|r| r.retries as u64).sum();
    let (mut tail, body): (Vec<Attribution>, Vec<Attribution>) = rows
        .into_iter()
        .partition(|r| r.latency_ns >= threshold_ns && threshold_ns > 0);
    tail.sort_by(|a, b| {
        b.latency_ns
            .cmp(&a.latency_ns)
            .then(a.request.cmp(&b.request))
    });
    TailAttribution {
        scenario: scenario.to_string(),
        strategy: strategy.to_string(),
        quantile,
        threshold_ns,
        joined: latencies.len(),
        mean_wait_ns: finite_mean(tail.iter().map(|r| r.wait_for_permit_ns as f64)),
        mean_queueing_ns: finite_mean(tail.iter().map(|r| r.queueing_ns as f64)),
        mean_service_ns: finite_mean(tail.iter().map(|r| r.service_ns as f64)),
        mean_regret: finite_mean(tail.iter().map(|r| r.regret)),
        mean_regret_rel: finite_mean(tail.iter().map(|r| r.regret_rel)),
        mean_queue_regret: finite_mean(tail.iter().map(|r| r.queue_regret)),
        body_mean_regret_rel: finite_mean(body.iter().map(|r| r.regret_rel)),
        hedges,
        hedge_wins,
        hedge_rescues,
        mean_hedge_saved_ns,
        mean_hedge_waste_ns,
        total_timeouts,
        total_retries,
        tail,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::{Recorder, ReplicaSnap, TRACE_GROUP};

    fn snap(server: u32, fresh: f64, pending: u32) -> ReplicaSnap {
        ReplicaSnap {
            server,
            pending,
            score: fresh as f32,
            fresh_score: fresh as f32,
            ewma_latency_ms: fresh as f32,
            ewma_queue: 1.0,
            srate: f32::NAN,
            outstanding: 0,
        }
    }

    fn decision(chosen: u32, snaps: &[ReplicaSnap]) -> TracePoint {
        let mut group = [ReplicaSnap::empty(); TRACE_GROUP];
        group[..snaps.len()].copy_from_slice(snaps);
        TracePoint::Decision {
            chosen,
            group_len: snaps.len() as u8,
            group,
        }
    }

    /// One request through the full lifecycle with a known-bad choice.
    #[test]
    fn attributes_wait_service_queueing_and_regret() {
        let mut rec = Recorder::new(64);
        let snaps = [snap(0, 40.0, 9), snap(1, 2.0, 1)];
        rec.record(Nanos(0), 7, TracePoint::Issue);
        rec.record(Nanos(100), 7, decision(0, &snaps));
        rec.record(Nanos(100), 7, TracePoint::Send { server: 0 });
        rec.record(
            Nanos(5_000),
            7,
            TracePoint::Feedback {
                server: 0,
                queue: 4,
                service_ns: 3_000,
            },
        );
        rec.record(Nanos(5_000), 7, TracePoint::Complete { latency_ns: 5_000 });
        let attr = attribute_tail(rec.events(), "t", "DS", 0.99);
        assert_eq!(attr.joined, 1);
        assert_eq!(attr.tail.len(), 1);
        let row = &attr.tail[0];
        assert_eq!(row.wait_for_permit_ns, 100);
        assert_eq!(row.service_ns, 3_000);
        assert_eq!(row.queueing_ns, 1_900);
        assert_eq!(row.chosen, 0);
        assert_eq!(row.best_server, 1);
        assert!((row.regret - 38.0).abs() < 1e-12);
        assert!((row.regret_rel - 19.0).abs() < 1e-12);
        assert!((row.queue_regret - 8.0).abs() < 1e-12);
    }

    #[test]
    fn threshold_splits_tail_from_body() {
        let mut rec = Recorder::new(4096);
        for i in 0..100u64 {
            rec.record(Nanos(i), i, TracePoint::Issue);
            rec.record(Nanos(i), i, TracePoint::Send { server: 0 });
            rec.record(
                Nanos(i + 1),
                i,
                TracePoint::Complete {
                    latency_ns: 1_000 + i * 10,
                },
            );
        }
        let attr = attribute_tail(rec.events(), "t", "LOR", 0.99);
        assert_eq!(attr.joined, 100);
        assert_eq!(attr.threshold_ns, 1_980, "rank ceil(0.99·100) = 99th");
        assert_eq!(attr.tail.len(), 2, "at-or-above threshold, worst first");
        assert_eq!(attr.tail[0].latency_ns, 1_990);
        assert_eq!(attr.tail[1].latency_ns, 1_980);
    }

    #[test]
    fn hedge_ledger_decomposes_benefit_and_cost() {
        let mut rec = Recorder::new(64);
        // Request 1: hedge wins, loser arrives later — measurable save.
        rec.record(Nanos(0), 1, TracePoint::Issue);
        rec.record(Nanos(0), 1, TracePoint::Send { server: 0 });
        rec.record(Nanos(2_000), 1, TracePoint::HedgeIssue { server: 1 });
        rec.record(Nanos(3_000), 1, TracePoint::HedgeWin { server: 1 });
        rec.record(Nanos(3_000), 1, TracePoint::Complete { latency_ns: 3_000 });
        rec.record(Nanos(8_000), 1, TracePoint::HedgeLoss { server: 0 });
        // Request 2: original wins, the duplicate's flight is pure waste.
        rec.record(Nanos(0), 2, TracePoint::Issue);
        rec.record(Nanos(0), 2, TracePoint::Send { server: 0 });
        rec.record(Nanos(2_000), 2, TracePoint::HedgeIssue { server: 1 });
        rec.record(Nanos(2_500), 2, TracePoint::Complete { latency_ns: 2_500 });
        rec.record(Nanos(6_000), 2, TracePoint::HedgeLoss { server: 1 });
        // Request 3: hedge rescues (the original never responds), after a
        // timeout and a retry.
        rec.record(Nanos(0), 3, TracePoint::Issue);
        rec.record(Nanos(0), 3, TracePoint::Send { server: 0 });
        rec.record(Nanos(5_000), 3, TracePoint::Timeout { server: 0 });
        rec.record(
            Nanos(5_100),
            3,
            TracePoint::Retry {
                server: 2,
                attempt: 1,
            },
        );
        rec.record(Nanos(6_000), 3, TracePoint::HedgeIssue { server: 1 });
        rec.record(Nanos(7_000), 3, TracePoint::HedgeWin { server: 1 });
        rec.record(Nanos(7_000), 3, TracePoint::Complete { latency_ns: 7_000 });
        let attr = attribute_tail(rec.events(), "crash-flux", "C3", 0.5);
        assert_eq!(attr.hedges, 3);
        assert_eq!(attr.hedge_wins, 2);
        assert_eq!(attr.hedge_rescues, 1);
        assert_eq!(attr.total_timeouts, 1);
        assert_eq!(attr.total_retries, 1);
        // Save: request 1's loser at 8 000 vs completion at 3 000.
        assert!((attr.mean_hedge_saved_ns - 5_000.0).abs() < 1e-9);
        // Waste: request 1's loser flew 8 000 (sent at 0), request 2's
        // duplicate flew 4 000 (hedged at 2 000, lost at 6 000).
        assert!((attr.mean_hedge_waste_ns - 6_000.0).abs() < 1e-9);
        let r3 = attr
            .tail
            .iter()
            .find(|r| r.request == 3)
            .expect("request 3 in tail");
        assert!(r3.hedge_rescued);
        assert_eq!(
            r3.hedge_saved_ns, 0,
            "rescue benefit is unbounded, not summed"
        );
        assert_eq!(r3.timeouts, 1);
        assert_eq!(r3.retries, 1);
    }

    #[test]
    fn backpressure_decisions_do_not_overwrite_the_real_one() {
        let mut rec = Recorder::new(64);
        let snaps = [snap(0, 1.0, 0), snap(1, 3.0, 2)];
        rec.record(Nanos(0), 1, TracePoint::Issue);
        rec.record(Nanos(10), 1, decision(NO_SERVER, &[]));
        rec.record(Nanos(500), 1, decision(0, &snaps));
        rec.record(Nanos(500), 1, TracePoint::Send { server: 0 });
        rec.record(Nanos(900), 1, TracePoint::Complete { latency_ns: 900 });
        let attr = attribute_tail(rec.events(), "t", "C3", 0.5);
        let row = &attr.tail[0];
        assert!(row.backpressured);
        assert_eq!(row.chosen, 0);
        assert_eq!(row.wait_for_permit_ns, 500);
        assert!((row.regret - 0.0).abs() < 1e-12, "picked the best: {row:?}");
    }
}
