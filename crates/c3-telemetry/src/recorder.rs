//! The flight recorder: a fixed-capacity ring of lifecycle events plus the
//! unified score-trace and gauge-series sampling paths.

use std::sync::{Arc, Mutex};
use std::time::Duration;

use c3_core::{Nanos, ReplicaView};
use c3_metrics::{ExactReservoir, LatencySummary};

/// Replicas captured per decision snapshot. Real deployments replicate
/// 3 ways (the paper's Cassandra setting); groups larger than this record
/// their first `TRACE_GROUP` members (the chosen replica is always among
/// them — drivers snapshot it first when truncating, so queue-regret is
/// an underestimate, never an overestimate, on wide groups). Kept tight
/// deliberately: every ring slot is the size of the `Decision` variant,
/// so this constant is the recorder's cache footprint.
pub const TRACE_GROUP: usize = 4;

/// Sentinel server id: "no server" (backpressure decisions, unknown
/// pending depth).
pub const NO_SERVER: u32 = u32::MAX;

/// Decision-time snapshot of one replica, as recorded next to a
/// selection.
///
/// Fields are `f32`, not the selector's native `f64`: a snapshot is
/// telemetry, not arithmetic input, and halving the slot width is what
/// keeps the ring's cache footprint (and therefore the recorder's
/// on-path cost) inside the ≤10% budget that `bench_engine --smoke`
/// gates. Seven significant digits are plenty to rank replicas in a
/// trace table.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ReplicaSnap {
    /// Server id ([`NO_SERVER`] marks an unused slot).
    pub server: u32,
    /// Ground-truth pending requests at the replica (queue + executing),
    /// from the driver — a strategy-agnostic regret yardstick no selector
    /// can bias. [`NO_SERVER`] when the driver cannot see it (live mode).
    pub pending: u32,
    /// The score the selector ranked this replica by.
    pub score: f32,
    /// The score a fresh recompute would give right now (equals `score`
    /// for C3, which recomputes every selection; differs for DS inside a
    /// frozen interval).
    pub fresh_score: f32,
    /// Selector's EWMA of response latency, in milliseconds.
    pub ewma_latency_ms: f32,
    /// Selector's EWMA of the server-reported queue size.
    pub ewma_queue: f32,
    /// CUBIC sending-rate budget (NaN for selectors without rate control).
    pub srate: f32,
    /// Requests the selector counts outstanding to this replica.
    pub outstanding: u32,
}

impl ReplicaSnap {
    /// Pack a selector's [`ReplicaView`] into a recorded snapshot.
    pub fn from_view(server: u32, view: &ReplicaView, pending: u32) -> Self {
        Self {
            server,
            pending,
            score: view.score as f32,
            fresh_score: view.fresh_score as f32,
            ewma_latency_ms: view.ewma_latency_ms as f32,
            ewma_queue: view.ewma_queue as f32,
            srate: view.srate as f32,
            outstanding: view.outstanding,
        }
    }

    /// A snapshot of a replica whose selector exposes no view (baselines
    /// like LOR or random): only the driver's ground-truth pending depth
    /// is known, so queue-regret still works where score-regret cannot.
    pub fn blind(server: u32, pending: u32) -> Self {
        Self {
            server,
            pending,
            ..Self::empty()
        }
    }

    /// An unused snapshot slot.
    pub fn empty() -> Self {
        Self {
            server: NO_SERVER,
            pending: NO_SERVER,
            score: f32::NAN,
            fresh_score: f32::NAN,
            ewma_latency_ms: f32::NAN,
            ewma_queue: f32::NAN,
            srate: f32::NAN,
            outstanding: 0,
        }
    }
}

/// One point in a request's lifecycle.
///
/// Variant sizes are deliberately unequal: the `Decision` snapshot array
/// is what makes the trace explanatory. This enum is the recorder's
/// *currency* (what `record` takes and `events` yields, all `Copy`, no
/// allocation), not its storage — the ring keeps 40 B slots and parks the
/// snapshot array in a side table touched only on decisions, which is how
/// the on-path cost stays inside the ≤10% gate in `bench_engine --smoke`.
#[allow(clippy::large_enum_variant)]
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum TracePoint {
    /// The client issued (created) the request.
    Issue,
    /// The selector decided. `chosen` is [`NO_SERVER`] for a backpressure
    /// decision; `group[..group_len]` are the candidate snapshots.
    Decision {
        /// Chosen server, or [`NO_SERVER`] on backpressure.
        chosen: u32,
        /// Candidates actually snapshotted.
        group_len: u8,
        /// Per-candidate decision-time snapshots.
        group: [ReplicaSnap; TRACE_GROUP],
    },
    /// The request went on the wire to `server` *without* its own
    /// decision (speculative retries and similar duplicates). The
    /// ordinary chosen-replica send is folded into the `Decision` event
    /// that triggered it — same driver timestamp, one ring slot instead
    /// of two — and the attribution join treats a successful decision as
    /// the send.
    Send {
        /// Destination server.
        server: u32,
    },
    /// Piggybacked server feedback arrived with the response.
    Feedback {
        /// Responding server.
        server: u32,
        /// Queue size the server reported.
        queue: u32,
        /// Service time the server reported, in nanoseconds.
        service_ns: u64,
    },
    /// The request completed at the client.
    Complete {
        /// End-to-end latency in nanoseconds.
        latency_ns: u64,
    },
    /// The request's deadline expired with no response; the client reaped
    /// it (and either retried, hedged on, or parked it).
    Timeout {
        /// Server the timed-out attempt was outstanding to.
        server: u32,
    },
    /// The request was re-dispatched after a timeout.
    Retry {
        /// New destination server (different from the timed-out one when
        /// the group allows).
        server: u32,
        /// 1-based retry attempt number.
        attempt: u8,
    },
    /// A hedge duplicate went on the wire (RepNet-style request
    /// replication: first response wins).
    HedgeIssue {
        /// Destination of the duplicate.
        server: u32,
    },
    /// The hedge duplicate's response arrived first and completed the
    /// request.
    HedgeWin {
        /// Server whose response won the race.
        server: u32,
    },
    /// A response for an already-completed request arrived and was
    /// discarded — the losing side of a hedge race.
    HedgeLoss {
        /// Server whose response lost.
        server: u32,
    },
    /// The failure detector evicted a server from candidate sets.
    Evict {
        /// Evicted server.
        server: u32,
    },
    /// The failure detector reinstated a previously evicted server.
    Reinstate {
        /// Reinstated server.
        server: u32,
    },
}

/// One recorded event: a lifecycle point of one request at one time.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TraceEvent {
    /// Driver time (sim time, or wall clock since run start in live mode).
    pub at: Nanos,
    /// Driver-unique request id.
    pub request: u64,
    /// What happened.
    pub point: TracePoint,
}

/// Ring slot: [`TracePoint`] minus the decision snapshot array, which
/// lives in the slot-parallel side table. Four of the five lifecycle
/// points carry ≤16 B of payload; storing them in [`TracePoint`]-sized
/// slots would make every `Issue` pay for the `Decision` array, and the
/// resulting write traffic is exactly what the ≤10% on-path cost gate
/// measures. 40 B here, 128 B in the side table touched only on
/// decisions.
#[derive(Clone, Copy, Debug)]
enum SlotPoint {
    Issue,
    Decision {
        chosen: u32,
        group_len: u8,
    },
    Send {
        server: u32,
    },
    Feedback {
        server: u32,
        queue: u32,
        service_ns: u64,
    },
    Complete {
        latency_ns: u64,
    },
    Timeout {
        server: u32,
    },
    Retry {
        server: u32,
        attempt: u8,
    },
    HedgeIssue {
        server: u32,
    },
    HedgeWin {
        server: u32,
    },
    HedgeLoss {
        server: u32,
    },
    Evict {
        server: u32,
    },
    Reinstate {
        server: u32,
    },
}

/// One compact ring slot (see [`SlotPoint`]).
#[derive(Clone, Copy, Debug)]
struct Slot {
    at: Nanos,
    request: u64,
    point: SlotPoint,
}

/// One named gauge series (the live client's `inflight`, `feedback-lag`).
#[derive(Clone, Debug)]
pub struct GaugeSeries {
    /// Series name.
    pub name: String,
    /// `(at, value)` samples in recording order.
    pub values: Vec<(Nanos, u64)>,
}

/// Allocation-bounded flight recorder.
///
/// Lifecycle events live in a ring of `capacity` slots: the ring fills,
/// then drops the **oldest** event per push (`dropped` counts them). A
/// capacity of 0 records no events at all — the shape the score-probe
/// path uses. Score samples and gauge values are bounded separately
/// ([`Recorder::SCORE_CAP`], [`Recorder::GAUGE_CAP`]); past the cap new
/// samples are counted but not stored, keeping early blackout windows
/// intact for the parity harness.
#[derive(Clone, Debug)]
pub struct Recorder {
    capacity: usize,
    slots: Vec<Slot>,
    /// Decision snapshot groups, slot-parallel: `snaps[i]` belongs to
    /// `slots[i]` iff that slot holds a `Decision` (sized lazily on the
    /// first decision; stale entries under non-decision slots are never
    /// read). Splitting them out keeps the per-event write to 40 B.
    snaps: Vec<[ReplicaSnap; TRACE_GROUP]>,
    /// Index of the oldest event once the ring has wrapped.
    head: usize,
    dropped: u64,
    score_interval: Nanos,
    last_score_sample: Option<Nanos>,
    score_trace: Vec<(Nanos, Vec<f64>)>,
    scores_truncated: u64,
    gauges: Vec<GaugeSeries>,
    gauges_truncated: u64,
}

impl Recorder {
    /// Default ring capacity — the *always-on black box* size: the last
    /// ~400 requests of lifecycle, small enough (≈340 KB with the
    /// decision side table) that attaching it costs under the ≤10%
    /// events/sec budget `bench_engine --smoke` gates. Forensic passes
    /// that want every request joined (`trace_explain`, the experiment
    /// tables) size the ring explicitly at ~6 slots per expected request
    /// and knowingly pay the larger cache footprint.
    pub const DEFAULT_CAPACITY: usize = 2_048;
    /// Retained score samples (50 ms cadence ⇒ days of sim time).
    pub const SCORE_CAP: usize = 65_536;
    /// Retained values per gauge series.
    pub const GAUGE_CAP: usize = 1 << 20;

    /// A recorder with `capacity` ring slots (0 = score/gauge sampling
    /// only, no lifecycle events).
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity,
            slots: Vec::new(),
            snaps: Vec::new(),
            head: 0,
            dropped: 0,
            score_interval: Nanos::from_millis(50),
            last_score_sample: None,
            score_trace: Vec::new(),
            scores_truncated: 0,
            gauges: Vec::new(),
            gauges_truncated: 0,
        }
    }

    /// A recorder at [`Recorder::DEFAULT_CAPACITY`].
    pub fn with_default_capacity() -> Self {
        Self::new(Self::DEFAULT_CAPACITY)
    }

    /// Override the score-trace sampling interval (default 50 ms, the
    /// cadence the sim-vs-live parity harness was pinned at).
    pub fn with_score_interval(mut self, interval: Nanos) -> Self {
        self.score_interval = interval;
        self
    }

    /// Ring capacity in events.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Events currently held (≤ capacity).
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether no events are held.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Events evicted to make room (drop-oldest).
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Record one event. O(1), allocation-free once the ring is full (the
    /// decision side table is sized once, on the first decision).
    #[inline]
    pub fn record(&mut self, at: Nanos, request: u64, point: TracePoint) {
        if self.capacity == 0 {
            return;
        }
        let (slot_point, group) = match point {
            TracePoint::Issue => (SlotPoint::Issue, None),
            TracePoint::Decision {
                chosen,
                group_len,
                group,
            } => (SlotPoint::Decision { chosen, group_len }, Some(group)),
            TracePoint::Send { server } => (SlotPoint::Send { server }, None),
            TracePoint::Feedback {
                server,
                queue,
                service_ns,
            } => (
                SlotPoint::Feedback {
                    server,
                    queue,
                    service_ns,
                },
                None,
            ),
            TracePoint::Complete { latency_ns } => (SlotPoint::Complete { latency_ns }, None),
            TracePoint::Timeout { server } => (SlotPoint::Timeout { server }, None),
            TracePoint::Retry { server, attempt } => (SlotPoint::Retry { server, attempt }, None),
            TracePoint::HedgeIssue { server } => (SlotPoint::HedgeIssue { server }, None),
            TracePoint::HedgeWin { server } => (SlotPoint::HedgeWin { server }, None),
            TracePoint::HedgeLoss { server } => (SlotPoint::HedgeLoss { server }, None),
            TracePoint::Evict { server } => (SlotPoint::Evict { server }, None),
            TracePoint::Reinstate { server } => (SlotPoint::Reinstate { server }, None),
        };
        let slot = Slot {
            at,
            request,
            point: slot_point,
        };
        let idx = if self.slots.len() < self.capacity {
            self.slots.push(slot);
            self.slots.len() - 1
        } else {
            let i = self.head;
            self.slots[i] = slot;
            self.head = (self.head + 1) % self.capacity;
            self.dropped += 1;
            i
        };
        if let Some(group) = group {
            if self.snaps.len() != self.capacity {
                self.snaps
                    .resize(self.capacity, [ReplicaSnap::empty(); TRACE_GROUP]);
            }
            self.snaps[idx] = group;
        }
    }

    /// Held events, oldest first. Items are reassembled by value from the
    /// compact ring slots ([`TraceEvent`] is `Copy`, ~150 B).
    pub fn events(&self) -> impl Iterator<Item = TraceEvent> + '_ {
        (0..self.slots.len()).map(move |k| {
            let idx = (self.head + k) % self.capacity;
            let slot = &self.slots[idx];
            let point = match slot.point {
                SlotPoint::Issue => TracePoint::Issue,
                SlotPoint::Decision { chosen, group_len } => TracePoint::Decision {
                    chosen,
                    group_len,
                    group: self.snaps[idx],
                },
                SlotPoint::Send { server } => TracePoint::Send { server },
                SlotPoint::Feedback {
                    server,
                    queue,
                    service_ns,
                } => TracePoint::Feedback {
                    server,
                    queue,
                    service_ns,
                },
                SlotPoint::Complete { latency_ns } => TracePoint::Complete { latency_ns },
                SlotPoint::Timeout { server } => TracePoint::Timeout { server },
                SlotPoint::Retry { server, attempt } => TracePoint::Retry { server, attempt },
                SlotPoint::HedgeIssue { server } => TracePoint::HedgeIssue { server },
                SlotPoint::HedgeWin { server } => TracePoint::HedgeWin { server },
                SlotPoint::HedgeLoss { server } => TracePoint::HedgeLoss { server },
                SlotPoint::Evict { server } => TracePoint::Evict { server },
                SlotPoint::Reinstate { server } => TracePoint::Reinstate { server },
            };
            TraceEvent {
                at: slot.at,
                request: slot.request,
                point,
            }
        })
    }

    /// Whether a score sample is due at `at` (throttled to the configured
    /// interval; the first call is always due). Callers check this before
    /// computing the score vector so the disabled/throttled path costs one
    /// branch.
    #[inline]
    pub fn scores_due(&self, at: Nanos) -> bool {
        match self.last_score_sample {
            Some(last) => at.saturating_sub(last) >= self.score_interval,
            None => true,
        }
    }

    /// Push one score sample (call only when [`Recorder::scores_due`]).
    pub fn push_scores(&mut self, at: Nanos, scores: Vec<f64>) {
        self.last_score_sample = Some(at);
        if self.score_trace.len() < Self::SCORE_CAP {
            self.score_trace.push((at, scores));
        } else {
            self.scores_truncated += 1;
        }
    }

    /// The per-replica score trace (the `with_score_probe` series).
    pub fn score_trace(&self) -> &[(Nanos, Vec<f64>)] {
        &self.score_trace
    }

    /// Move the score trace out (for result structs that own it).
    pub fn take_score_trace(&mut self) -> Vec<(Nanos, Vec<f64>)> {
        std::mem::take(&mut self.score_trace)
    }

    /// Append one value to the named gauge series (created on first use).
    pub fn gauge(&mut self, name: &str, at: Nanos, value: u64) {
        let series = match self.gauges.iter_mut().position(|g| g.name == name) {
            Some(i) => &mut self.gauges[i],
            None => {
                self.gauges.push(GaugeSeries {
                    name: name.to_string(),
                    values: Vec::new(),
                });
                self.gauges.last_mut().expect("just pushed")
            }
        };
        if series.values.len() < Self::GAUGE_CAP {
            series.values.push((at, value));
        } else {
            self.gauges_truncated += 1;
        }
    }

    /// Bulk-append values to a named gauge series (the live client pours
    /// its per-thread sample vectors through here at teardown).
    pub fn gauge_extend(&mut self, name: &str, values: &[(Nanos, u64)]) {
        for &(at, v) in values {
            self.gauge(name, at, v);
        }
    }

    /// All gauge series, in creation order.
    pub fn gauges(&self) -> &[GaugeSeries] {
        &self.gauges
    }

    /// One gauge series by name.
    pub fn gauge_series(&self, name: &str) -> Option<&GaugeSeries> {
        self.gauges.iter().find(|g| g.name == name)
    }

    /// Samples counted but not stored because a cap was hit
    /// `(score_samples, gauge_values)`.
    pub fn truncated(&self) -> (u64, u64) {
        (self.scores_truncated, self.gauges_truncated)
    }
}

/// Summary of one gauge series over a run window, in the shape the live
/// report's health channels use: exact order statistics over the sampled
/// values, and the sampling rate as "throughput".
#[derive(Clone, Copy, Debug)]
pub struct GaugeSummary {
    /// Samples recorded.
    pub count: u64,
    /// Samples per second over `duration`.
    pub throughput: f64,
    /// Exact percentiles of the sampled values (the `_ns` field names are
    /// the summary struct's convention; the unit here is the gauge's own).
    pub summary: LatencySummary,
}

/// Summarize a gauge series exactly (every sample, order statistics) —
/// the one construction path for live health channels.
pub fn summarize_gauge(values: &[(Nanos, u64)], duration: Duration) -> GaugeSummary {
    let mut reservoir = ExactReservoir::new();
    for &(_, v) in values {
        reservoir.record(v);
    }
    let count = reservoir.count();
    let secs = duration.as_secs_f64();
    GaugeSummary {
        count,
        throughput: if secs > 0.0 { count as f64 / secs } else { 0.0 },
        summary: reservoir.summary(),
    }
}

/// A recorder behind `Arc<Mutex<_>>` for the live client's threads. The
/// hot paths keep their thread-local buffers; this is the aggregation
/// and reporting handle they drain into.
#[derive(Clone, Debug)]
pub struct SharedRecorder(Arc<Mutex<Recorder>>);

impl SharedRecorder {
    /// Wrap a recorder for sharing.
    pub fn new(recorder: Recorder) -> Self {
        Self(Arc::new(Mutex::new(recorder)))
    }

    /// Run `f` with the locked recorder.
    pub fn with<T>(&self, f: impl FnOnce(&mut Recorder) -> T) -> T {
        f(&mut self.0.lock().expect("recorder lock poisoned"))
    }

    /// Unwrap the recorder once all other handles are gone.
    ///
    /// # Panics
    ///
    /// Panics when other clones are still alive.
    pub fn into_inner(self) -> Recorder {
        Arc::try_unwrap(self.0)
            .expect("other SharedRecorder handles still alive")
            .into_inner()
            .expect("recorder lock poisoned")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_respects_capacity_and_drops_oldest() {
        let mut rec = Recorder::new(4);
        for i in 0..10u64 {
            rec.record(Nanos(i), i, TracePoint::Issue);
        }
        assert_eq!(rec.len(), 4);
        assert_eq!(rec.dropped(), 6);
        let held: Vec<u64> = rec.events().map(|e| e.request).collect();
        assert_eq!(held, vec![6, 7, 8, 9], "oldest dropped, order preserved");
    }

    #[test]
    fn zero_capacity_records_nothing() {
        let mut rec = Recorder::new(0);
        rec.record(Nanos(1), 1, TracePoint::Issue);
        assert!(rec.is_empty());
        assert_eq!(rec.dropped(), 0);
    }

    #[test]
    fn score_sampling_is_throttled() {
        let mut rec = Recorder::new(0).with_score_interval(Nanos::from_millis(50));
        assert!(rec.scores_due(Nanos::ZERO));
        rec.push_scores(Nanos::ZERO, vec![1.0]);
        assert!(!rec.scores_due(Nanos::from_millis(49)));
        assert!(rec.scores_due(Nanos::from_millis(50)));
        rec.push_scores(Nanos::from_millis(50), vec![2.0]);
        assert_eq!(rec.score_trace().len(), 2);
    }

    #[test]
    fn gauges_accumulate_by_name() {
        let mut rec = Recorder::new(0);
        rec.gauge("inflight", Nanos(1), 3);
        rec.gauge("inflight", Nanos(2), 5);
        rec.gauge("feedback-lag", Nanos(2), 900);
        assert_eq!(rec.gauges().len(), 2);
        assert_eq!(rec.gauge_series("inflight").unwrap().values.len(), 2);
        let s = summarize_gauge(
            &rec.gauge_series("inflight").unwrap().values,
            Duration::from_secs(1),
        );
        assert_eq!(s.count, 2);
        assert_eq!(s.summary.max_ns, 5);
        assert_eq!(s.throughput, 2.0);
    }

    #[test]
    fn lifecycle_hardening_points_round_trip() {
        let mut rec = Recorder::new(16);
        let pts = [
            TracePoint::Timeout { server: 3 },
            TracePoint::Retry {
                server: 4,
                attempt: 1,
            },
            TracePoint::HedgeIssue { server: 5 },
            TracePoint::HedgeWin { server: 5 },
            TracePoint::HedgeLoss { server: 3 },
            TracePoint::Evict { server: 3 },
            TracePoint::Reinstate { server: 3 },
        ];
        for (i, p) in pts.iter().enumerate() {
            rec.record(Nanos(i as u64), 9, *p);
        }
        let back: Vec<TracePoint> = rec.events().map(|e| e.point).collect();
        assert_eq!(back, pts.to_vec());
    }

    #[test]
    fn shared_recorder_round_trips() {
        let shared = SharedRecorder::new(Recorder::new(2));
        shared.with(|r| r.record(Nanos(1), 7, TracePoint::Issue));
        let rec = shared.into_inner();
        assert_eq!(rec.len(), 1);
    }
}
