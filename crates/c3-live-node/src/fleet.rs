//! The process supervisor: spawn, crash, respawn and drain a fleet of
//! `c3-live-node` replica processes.
//!
//! One [`NodeFleet`] owns one OS process per replica. Each child gets
//! its [`NodeConfig`](crate::NodeConfig) as a kv temp file, prints its
//! learned `<id>=<addr>` line on stdout, then serves until its stdin
//! reaches EOF — which is also the shutdown protocol: the supervisor
//! closes stdin, waits briefly, and only SIGKILLs stragglers (counting
//! them, so tests can assert a clean fleet leaks zero children).
//! [`NodeFleet::kill`] is a real SIGKILL and [`NodeFleet::respawn`]
//! rebinds the learned port, which is what makes the node crash-flux
//! scenario's crashes *actual process deaths* rather than emulation.

use std::io::{self, BufRead, BufReader};
use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

use crate::config::{FleetConfig, NodeConfig};
use crate::discovery::encode_addresses;

/// Environment variable overriding where the `c3-live-node` binary
/// lives (used when the coordinator is not a sibling of the node bin).
pub const NODE_BIN_ENV: &str = "C3_NODE_BIN";

/// Distinguishes this process's temp files from other fleets'.
static FILE_COUNTER: AtomicUsize = AtomicUsize::new(0);

/// Locate the node binary: [`NODE_BIN_ENV`] if set, else a
/// `c3-live-node` sibling of the current executable (the layout cargo
/// produces for workspace binaries). `None` when neither exists.
pub fn node_bin() -> Option<PathBuf> {
    if let Ok(path) = std::env::var(NODE_BIN_ENV) {
        let path = PathBuf::from(path);
        return path.is_file().then_some(path);
    }
    let exe = std::env::current_exe().ok()?;
    let sibling = exe.parent()?.join("c3-live-node");
    sibling.is_file().then_some(sibling)
}

struct NodeHandle {
    child: Child,
    addr: SocketAddr,
    config_path: PathBuf,
}

/// A running fleet of one-replica node processes.
pub struct NodeFleet {
    bin: PathBuf,
    fleet: FleetConfig,
    nodes: Vec<NodeHandle>,
    addrs: Vec<SocketAddr>,
    address_file: PathBuf,
}

impl NodeFleet {
    /// Spawn `fleet.replicas` node processes on ephemeral loopback
    /// ports, wait for each to report its learned address, and write an
    /// address file describing the fleet.
    pub fn spawn(bin: &Path, fleet: &FleetConfig) -> io::Result<Self> {
        let mut nodes = Vec::with_capacity(fleet.replicas);
        let mut addrs = Vec::with_capacity(fleet.replicas);
        for id in 0..fleet.replicas {
            let bind = "127.0.0.1:0".parse().expect("literal address");
            let node = match spawn_node(bin, fleet, id as u32, bind) {
                Ok(node) => node,
                Err(e) => {
                    // Abandoning a half-spawned fleet would leak
                    // children; drain the ones that did come up.
                    drain(&mut nodes, Duration::from_secs(2));
                    return Err(e);
                }
            };
            addrs.push(node.addr);
            nodes.push(node);
        }
        let address_file = temp_path("fleet", "addrs");
        std::fs::write(&address_file, encode_addresses(&addrs))?;
        Ok(Self {
            bin: bin.to_path_buf(),
            fleet: fleet.clone(),
            nodes,
            addrs,
            address_file,
        })
    }

    /// Replica-ordered node addresses. Stable across [`NodeFleet::respawn`]
    /// (a respawned node rebinds its learned port).
    pub fn addrs(&self) -> &[SocketAddr] {
        &self.addrs
    }

    /// Path of the kv address file describing this fleet.
    pub fn address_file(&self) -> &Path {
        &self.address_file
    }

    /// Digest of the fleet configuration the nodes announce.
    pub fn digest(&self) -> u64 {
        self.fleet.digest()
    }

    /// OS pids, replica-ordered — the gauge sampler's targets. A killed
    /// replica keeps reporting its dead pid until respawned (samples of
    /// a dead pid are `None`, so its gauges simply pause).
    pub fn pids(&self) -> Vec<u32> {
        self.nodes.iter().map(|n| n.child.id()).collect()
    }

    /// SIGKILL replica `id`'s process — a real crash: the kernel severs
    /// its connections mid-flight, nothing is flushed.
    pub fn kill(&mut self, id: usize) -> io::Result<()> {
        let node = &mut self.nodes[id];
        node.child.kill()?;
        // Reap, so the pid does not linger as a zombie that procfs
        // still answers for.
        node.child.wait()?;
        Ok(())
    }

    /// Restart replica `id` on its original (learned) port, so clients
    /// redialing the address from before the crash reach the newcomer.
    /// Retries briefly while the kernel releases the port.
    pub fn respawn(&mut self, id: usize) -> io::Result<()> {
        let addr = self.addrs[id];
        let mut last = None;
        for _ in 0..20 {
            match spawn_node(&self.bin, &self.fleet, id as u32, addr) {
                Ok(node) => {
                    let old = std::mem::replace(&mut self.nodes[id], node);
                    let _ = std::fs::remove_file(&old.config_path);
                    return Ok(());
                }
                Err(e) => {
                    last = Some(e);
                    std::thread::sleep(Duration::from_millis(25));
                }
            }
        }
        Err(last.expect("at least one attempt"))
    }

    /// Drain the fleet: close every stdin (the graceful-exit signal),
    /// wait up to two seconds, then SIGKILL stragglers. Returns how many
    /// needed force — a healthy teardown returns 0, and the smoke tests
    /// assert exactly that (no leaked children).
    pub fn shutdown(mut self) -> usize {
        let forced = drain(&mut self.nodes, Duration::from_secs(2));
        let _ = std::fs::remove_file(&self.address_file);
        forced
    }
}

fn drain(nodes: &mut Vec<NodeHandle>, grace: Duration) -> usize {
    for node in nodes.iter_mut() {
        drop(node.child.stdin.take());
    }
    let deadline = std::time::Instant::now() + grace;
    let mut forced = 0;
    for node in nodes.iter_mut() {
        loop {
            match node.child.try_wait() {
                Ok(Some(_)) => break,
                Ok(None) if std::time::Instant::now() < deadline => {
                    std::thread::sleep(Duration::from_millis(10));
                }
                _ => {
                    forced += 1;
                    let _ = node.child.kill();
                    let _ = node.child.wait();
                    break;
                }
            }
        }
        let _ = std::fs::remove_file(&node.config_path);
    }
    nodes.clear();
    forced
}

fn temp_path(tag: &str, ext: &str) -> PathBuf {
    let n = FILE_COUNTER.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("c3-node-{}-{tag}-{n}.{ext}", std::process::id()))
}

fn spawn_node(
    bin: &Path,
    fleet: &FleetConfig,
    replica_id: u32,
    bind: SocketAddr,
) -> io::Result<NodeHandle> {
    let cfg = NodeConfig {
        replica_id,
        bind,
        fleet: fleet.clone(),
    };
    let config_path = temp_path(&format!("r{replica_id}"), "kv");
    std::fs::write(&config_path, cfg.to_kv())?;
    let mut child = Command::new(bin)
        .arg("--config")
        .arg(&config_path)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .inspect_err(|_| {
            let _ = std::fs::remove_file(&config_path);
        })?;
    // The node's first stdout line is `<id>=<addr>` with the learned
    // port. EOF before that line means the process died on startup
    // (e.g. the port was still held) — surface it as an error so the
    // caller can retry or abort.
    let stdout = child.stdout.take().expect("stdout piped");
    let mut line = String::new();
    BufReader::new(stdout).read_line(&mut line)?;
    let announced = line
        .trim()
        .split_once('=')
        .and_then(|(id, addr)| Some((id.parse::<u32>().ok()?, addr.parse::<SocketAddr>().ok()?)));
    match announced {
        Some((id, addr)) if id == replica_id => Ok(NodeHandle {
            child,
            addr,
            config_path,
        }),
        _ => {
            let _ = child.kill();
            let _ = child.wait();
            let _ = std::fs::remove_file(&config_path);
            Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("node {replica_id} announced {line:?} instead of its id=addr line"),
            ))
        }
    }
}
