//! Multi-process scenarios: the node-fleet twins of the live scenario
//! library, registered as ordinary [`ScenarioRegistry`] names.
//!
//! [`run_node`] is [`run_live_on`] with a process fleet around it: it
//! spawns one `c3-live-node` process per replica, drives the unchanged
//! multiplexed client at them over [`Transport::Remote`], samples each
//! process's RSS/CPU into recorder gauge channels, and — for fault
//! plans carrying [`FaultKind::Crash`] windows — delivers those crashes
//! as **real SIGKILLs** with a supervisor respawning the node on its
//! learned port when the window closes. The crash windows are stripped
//! from the fleet config the nodes receive (a node must not *emulate* a
//! crash the supervisor is about to inflict for real), while the
//! client's config keeps the full plan so its dial/redial tolerance
//! engages exactly as in the in-process crash-flux scenario.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use c3_cluster::{FaultEvent, FaultKind};
use c3_core::Nanos;
use c3_live::{
    crash_flux_config, hetero_fleet_config, partition_flux_config, run_live_on, LiveConfig,
    LiveReport, Transport,
};
use c3_scenarios::{ChannelReport, ScenarioParams, ScenarioRegistry};
use c3_telemetry::{node_cpu_gauge, node_rss_gauge, sample_process, summarize_gauge};

use crate::config::FleetConfig;
use crate::fleet::NodeFleet;

/// Registry name: the hetero-fleet script over a process fleet.
pub const NODE_HETERO_FLEET: &str = "node-hetero-fleet";
/// Registry name: the partition/flux blackout script over a process fleet.
pub const NODE_PARTITION_FLUX: &str = "node-partition-flux";
/// Registry name: crash-flux with real SIGKILL crashes and supervised
/// respawns.
pub const NODE_CRASH_FLUX: &str = "node-crash-flux";

/// How often the coordinator samples each node's RSS/CPU from procfs.
const GAUGE_EVERY: Duration = Duration::from_millis(50);

/// Run `cfg` against a freshly spawned fleet of `c3-live-node`
/// processes (binary at `bin`), through the same engine-runner plumbing
/// as [`run_live`](c3_live::run_live). Per-node RSS/CPU gauge series
/// land in the report's recorder and health channels.
///
/// # Panics
///
/// As [`run_live_on`]; additionally when the fleet fails to spawn or
/// leaks a process past the graceful drain.
pub fn run_node(scenario_name: &str, cfg: LiveConfig, bin: &Path) -> LiveReport {
    let mut fleet_cfg = FleetConfig::from_live(&cfg);
    // Crashes are the supervisor's job — delivered as real SIGKILLs on
    // the plan's timeline. The nodes must not also emulate them.
    let crashes: Vec<FaultEvent> = fleet_cfg
        .faults
        .events
        .iter()
        .filter(|e| e.kind == FaultKind::Crash)
        .cloned()
        .collect();
    fleet_cfg
        .faults
        .events
        .retain(|e| e.kind != FaultKind::Crash);

    let fleet = NodeFleet::spawn(bin, &fleet_cfg).expect("node fleet failed to spawn");
    let addrs = fleet.addrs().to_vec();
    let config_digest = fleet.digest();
    let replicas = fleet_cfg.replicas;
    let fleet = Arc::new(Mutex::new(Some(fleet)));
    let stop = Arc::new(AtomicBool::new(false));

    let sampler = spawn_gauge_sampler(Arc::clone(&fleet), Arc::clone(&stop), replicas);
    let supervisor = (!crashes.is_empty())
        .then(|| spawn_crash_supervisor(Arc::clone(&fleet), Arc::clone(&stop), crashes));

    let mut live = run_live_on(
        scenario_name,
        cfg,
        Transport::Remote {
            addrs,
            config_digest,
        },
    );

    stop.store(true, Ordering::Relaxed);
    let (rss, cpu) = sampler.join().expect("gauge sampler panicked");
    if let Some(handle) = supervisor {
        handle.join().expect("crash supervisor panicked");
    }
    let forced = fleet
        .lock()
        .expect("fleet lock")
        .take()
        .expect("fleet still owned")
        .shutdown();
    assert_eq!(
        forced, 0,
        "node fleet leaked {forced} process(es) past the graceful drain"
    );

    let duration = live.report.duration;
    for replica in 0..replicas {
        for (name, values) in [
            (node_rss_gauge(replica), &rss[replica]),
            (node_cpu_gauge(replica), &cpu[replica]),
        ] {
            live.recorder.gauge_extend(&name, values);
            let gauge = summarize_gauge(values, duration.into());
            live.health.push(ChannelReport {
                name,
                completions: gauge.count,
                throughput: gauge.throughput,
                summary: gauge.summary,
            });
        }
    }
    live
}

type GaugeSeriesSet = (Vec<Vec<(Nanos, u64)>>, Vec<Vec<(Nanos, u64)>>);

/// Poll procfs for every node's RSS/CPU until stopped. A crashed (dead)
/// node samples as `None` and its series simply pauses until respawn.
fn spawn_gauge_sampler(
    fleet: Arc<Mutex<Option<NodeFleet>>>,
    stop: Arc<AtomicBool>,
    replicas: usize,
) -> JoinHandle<GaugeSeriesSet> {
    thread::spawn(move || {
        let t0 = Instant::now();
        let mut rss = vec![Vec::new(); replicas];
        let mut cpu = vec![Vec::new(); replicas];
        loop {
            let pids = fleet
                .lock()
                .expect("fleet lock")
                .as_ref()
                .map(|f| f.pids())
                .unwrap_or_default();
            let at = Nanos(t0.elapsed().as_nanos() as u64);
            for (replica, pid) in pids.into_iter().enumerate() {
                if let Some(sample) = sample_process(pid) {
                    rss[replica].push((at, sample.rss_kb));
                    cpu[replica].push((at, sample.cpu_ms));
                }
            }
            if stop.load(Ordering::Relaxed) {
                return (rss, cpu);
            }
            thread::sleep(GAUGE_EVERY);
        }
    })
}

/// Replay crash windows as real process deaths: SIGKILL at each window's
/// start, respawn on the learned port at its end. Windows are flattened
/// into one time-sorted action list so overlapping windows on different
/// nodes interleave correctly.
fn spawn_crash_supervisor(
    fleet: Arc<Mutex<Option<NodeFleet>>>,
    stop: Arc<AtomicBool>,
    crashes: Vec<FaultEvent>,
) -> JoinHandle<()> {
    enum Action {
        Kill(usize),
        Respawn(usize),
    }
    let mut timeline: Vec<(Nanos, Action)> = crashes
        .iter()
        .flat_map(|e| {
            [
                (e.start, Action::Kill(e.node)),
                (e.end, Action::Respawn(e.node)),
            ]
        })
        .collect();
    timeline.sort_by_key(|(at, _)| *at);
    thread::spawn(move || {
        let t0 = Instant::now();
        for (at, action) in timeline {
            // Sleep to the action's time in short hops so a finished run
            // stops the supervisor without waiting out far-future
            // windows (fault plans span minutes; runs last ~1.5 s).
            loop {
                if stop.load(Ordering::Relaxed) {
                    return;
                }
                let elapsed = Nanos(t0.elapsed().as_nanos() as u64);
                if elapsed >= at {
                    break;
                }
                let left = Duration::from_nanos(at.as_nanos() - elapsed.as_nanos());
                thread::sleep(left.min(Duration::from_millis(5)));
            }
            let mut guard = fleet.lock().expect("fleet lock");
            let Some(f) = guard.as_mut() else { return };
            // Best-effort on both edges: a node that failed to respawn
            // is indistinguishable from a long crash, which the client's
            // fault tolerance already covers.
            let _ = match action {
                Action::Kill(node) => f.kill(node),
                Action::Respawn(node) => f.respawn(node),
            };
        }
    })
}

/// Register the node-fleet scenarios into a registry, binding them to a
/// node binary. `scenario_sweep`-style callers then fan multi-process
/// cells out by name exactly like sim or in-process live cells.
pub fn register_node_scenarios(registry: &mut ScenarioRegistry, bin: &Path) {
    let node_bin: PathBuf = bin.to_path_buf();
    let bin = node_bin.clone();
    registry.register(NODE_HETERO_FLEET, move |p: &ScenarioParams| {
        Ok(run_node(NODE_HETERO_FLEET, hetero_fleet_config(p)?, &bin).report)
    });
    let bin = node_bin.clone();
    registry.register(NODE_PARTITION_FLUX, move |p: &ScenarioParams| {
        Ok(run_node(NODE_PARTITION_FLUX, partition_flux_config(p)?, &bin).report)
    });
    let bin = node_bin;
    registry.register(NODE_CRASH_FLUX, move |p: &ScenarioParams| {
        Ok(run_node(NODE_CRASH_FLUX, crash_flux_config(p)?, &bin).report)
    });
}

/// The full registry — sim library, in-process live backends, and the
/// node-fleet scenarios bound to `bin`.
pub fn node_registry(bin: &Path) -> ScenarioRegistry {
    let mut registry = c3_live::live_registry();
    register_node_scenarios(&mut registry, bin);
    registry
}

/// Convenience: a config for `scenario` built by the matching live
/// config builder (node scenarios reuse the live scripts verbatim).
pub fn node_config(scenario: &str, params: &ScenarioParams) -> Option<LiveConfig> {
    match scenario {
        NODE_HETERO_FLEET => hetero_fleet_config(params).ok(),
        NODE_PARTITION_FLUX => partition_flux_config(params).ok(),
        NODE_CRASH_FLUX => crash_flux_config(params).ok(),
        _ => None,
    }
}
