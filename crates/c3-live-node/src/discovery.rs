//! Fleet discovery: how a coordinator finds already-running nodes.
//!
//! Two equivalent sources, both mapping replica id → socket address:
//!
//! - an **address file** in the kv dialect, one `<id>=<addr>` line per
//!   node (the coordinator writes one next to the fleet it spawns, and
//!   operators can hand-write one to attach to a fleet started by other
//!   means);
//! - the **`C3_NODES`** environment variable, a comma- or
//!   whitespace-separated list of addresses in replica order — the
//!   zero-file path for CI one-liners.
//!
//! Ids must be dense (`0..n`): a gap means a node is missing and the
//! client would dial the wrong replica under a shifted index, so
//! discovery fails loudly instead.

use std::fmt;
use std::net::SocketAddr;

use c3_core::kv::{KvError, KvMap};

/// Environment variable naming a fleet: comma- or whitespace-separated
/// node addresses in replica order.
pub const NODES_ENV: &str = "C3_NODES";

/// A discovery failure: malformed text, or a sparse/empty fleet.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DiscoveryError {
    /// The address file failed to parse as kv text or held a bad value.
    Kv(KvError),
    /// No nodes listed at all.
    Empty,
    /// Ids are not dense `0..n` — `missing` is the first absent id.
    Gap {
        /// The first replica id with no address.
        missing: usize,
    },
}

impl fmt::Display for DiscoveryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DiscoveryError::Kv(e) => write!(f, "address list: {e}"),
            DiscoveryError::Empty => write!(f, "address list names no nodes"),
            DiscoveryError::Gap { missing } => {
                write!(
                    f,
                    "address list has no node {missing}: ids must be dense 0..n"
                )
            }
        }
    }
}

impl std::error::Error for DiscoveryError {}

impl From<KvError> for DiscoveryError {
    fn from(e: KvError) -> Self {
        DiscoveryError::Kv(e)
    }
}

/// Render a fleet as address-file text: one `<id>=<addr>` line per node.
pub fn encode_addresses(addrs: &[SocketAddr]) -> String {
    let mut out = String::new();
    for (id, addr) in addrs.iter().enumerate() {
        out.push_str(&format!("{id}={addr}\n"));
    }
    out
}

/// Parse address-file text into replica-ordered addresses. Ids must be
/// dense `0..n`; unknown keys, duplicates and gaps are errors.
pub fn parse_addresses(text: &str) -> Result<Vec<SocketAddr>, DiscoveryError> {
    let mut kv = KvMap::parse(text)?;
    let mut addrs = Vec::new();
    loop {
        // Take ids densely; the id key is dynamic, so parse the value by
        // hand rather than through `take_parsed` (which wants a static
        // key for its error).
        let key = addrs.len().to_string();
        let Some(value) = kv.take(&key) else { break };
        let addr = value.parse().map_err(|_| {
            DiscoveryError::Kv(KvError::Invalid {
                key,
                value,
                expected: "socket address",
            })
        })?;
        addrs.push(addr);
    }
    if addrs.is_empty() {
        // Distinguish "nothing at all" from "ids start above zero".
        if kv.is_empty() {
            return Err(DiscoveryError::Empty);
        }
        return Err(DiscoveryError::Gap { missing: 0 });
    }
    // Any leftover key is either a non-dense id or a typo; both mean the
    // file does not describe the fleet the client is about to dial.
    kv.finish().map_err(|e| match e {
        KvError::Unknown { key } if key.parse::<usize>().is_ok() => DiscoveryError::Gap {
            missing: addrs.len(),
        },
        other => DiscoveryError::Kv(other),
    })?;
    Ok(addrs)
}

/// Parse a `C3_NODES`-style value: addresses separated by commas and/or
/// whitespace, in replica order.
pub fn parse_env(value: &str) -> Result<Vec<SocketAddr>, DiscoveryError> {
    let addrs = value
        .split(|c: char| c == ',' || c.is_whitespace())
        .filter(|s| !s.is_empty())
        .map(|s| {
            s.parse().map_err(|_| {
                DiscoveryError::Kv(KvError::Invalid {
                    key: NODES_ENV.to_string(),
                    value: s.to_string(),
                    expected: "socket address",
                })
            })
        })
        .collect::<Result<Vec<SocketAddr>, _>>()?;
    if addrs.is_empty() {
        return Err(DiscoveryError::Empty);
    }
    Ok(addrs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn address_file_round_trips() {
        let addrs: Vec<SocketAddr> = vec![
            "127.0.0.1:4100".parse().unwrap(),
            "127.0.0.1:4101".parse().unwrap(),
            "127.0.0.1:4102".parse().unwrap(),
        ];
        assert_eq!(parse_addresses(&encode_addresses(&addrs)).unwrap(), addrs);
    }

    #[test]
    fn gaps_fail_loudly() {
        let text = "0=127.0.0.1:4100\n2=127.0.0.1:4102\n";
        assert_eq!(
            parse_addresses(text),
            Err(DiscoveryError::Gap { missing: 1 })
        );
        assert_eq!(
            parse_addresses("1=127.0.0.1:4101\n"),
            Err(DiscoveryError::Gap { missing: 0 })
        );
    }

    #[test]
    fn empty_and_malformed_inputs_are_rejected() {
        assert_eq!(parse_addresses(""), Err(DiscoveryError::Empty));
        assert!(matches!(
            parse_addresses("0=not-an-address\n"),
            Err(DiscoveryError::Kv(KvError::Invalid { .. }))
        ));
        assert!(matches!(
            parse_addresses("0=127.0.0.1:4100\nwat=1\n"),
            Err(DiscoveryError::Kv(KvError::Unknown { .. }))
        ));
    }

    #[test]
    fn env_accepts_commas_and_whitespace() {
        let addrs = parse_env("127.0.0.1:4100, 127.0.0.1:4101\n127.0.0.1:4102").unwrap();
        assert_eq!(addrs.len(), 3);
        assert_eq!(addrs[2], "127.0.0.1:4102".parse().unwrap());
        assert_eq!(parse_env("  ,  "), Err(DiscoveryError::Empty));
    }
}
