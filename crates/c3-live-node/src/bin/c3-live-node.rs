//! One replica, one process: load a [`NodeConfig`] kv file, serve until
//! stdin reaches EOF.
//!
//! Protocol with the supervisor (or an operator's shell):
//!
//! 1. `c3-live-node --config <path>` binds the configured address and
//!    starts the replica (frame server, sharded store, executor pool,
//!    disk model, fault replay — the same [`ReplicaServer`] the
//!    in-process cluster runs).
//! 2. It prints exactly one line on stdout — `<replica_id>=<addr>` with
//!    the learned port — then nothing else. Coordinators parse that
//!    line; operators can paste it into an address file.
//! 3. It serves until stdin reaches EOF (supervisor closed the pipe, or
//!    Ctrl-D interactively), then shuts down cleanly. A SIGKILL at any
//!    point is the crash-flux scenario's real crash.

use std::io::Read as _;
use std::process::ExitCode;

use c3_core::WallClock;
use c3_live::{ReplicaServer, SlowdownScript};
use c3_live_node::NodeConfig;

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("c3-live-node: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run() -> Result<(), String> {
    let mut args = std::env::args().skip(1);
    let config_path = match (args.next().as_deref(), args.next()) {
        (Some("--config"), Some(path)) => path,
        _ => return Err("usage: c3-live-node --config <path>".to_string()),
    };
    if args.next().is_some() {
        return Err("usage: c3-live-node --config <path>".to_string());
    }
    let text =
        std::fs::read_to_string(&config_path).map_err(|e| format!("reading {config_path}: {e}"))?;
    let cfg = NodeConfig::from_kv(&text).map_err(|e| format!("parsing {config_path}: {e}"))?;

    let script = SlowdownScript::new(cfg.fleet.scripted.clone());
    let server = ReplicaServer::bind(
        &cfg.replica_spec(),
        cfg.bind,
        script.into_hook(),
        WallClock::start(),
    )
    .map_err(|e| format!("binding {}: {e}", cfg.bind))?;

    // The one contractual stdout line: id=learned-address.
    println!("{}={}", cfg.replica_id, server.addr());
    use std::io::Write as _;
    std::io::stdout()
        .flush()
        .map_err(|e| format!("announcing address: {e}"))?;

    // Serve until the supervisor closes our stdin.
    let mut sink = [0u8; 4096];
    let mut stdin = std::io::stdin();
    loop {
        match stdin.read(&mut sink) {
            Ok(0) => break,
            Ok(_) => continue,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(format!("waiting on stdin: {e}")),
        }
    }
    server.shutdown();
    Ok(())
}
