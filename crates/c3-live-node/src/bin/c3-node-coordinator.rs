//! The fleet coordinator: spawn (or attach to) a `c3-live-node` fleet
//! and drive a scenario at it with the unchanged c3-live client.
//!
//! Modes:
//!
//! - **`--smoke`** (the default): spawn a 3-node fleet, run a short
//!   `node-hetero-fleet` cell, print the headline numbers and per-node
//!   RSS/CPU, and exit nonzero unless the run completed and the fleet
//!   drained without leaking a process. This is the CI one-liner.
//! - **`--emit-configs <dir>`**: write one `node-<id>.kv` config file
//!   per replica for the chosen scenario, for operators starting nodes
//!   by hand (each node prints its `<id>=<addr>` line; collect them
//!   into an address file).
//! - **`--attach <address-file>`** (or the `C3_NODES` environment
//!   variable with no `--attach`): run the scenario against an
//!   already-running fleet discovered from the file/env instead of
//!   spawning one. Node identity and fleet-config digest are verified
//!   via the hello handshake, so attaching to the wrong fleet fails
//!   loudly rather than measuring it.
//!
//! Shared flags: `--scenario <name>` (node-hetero-fleet,
//! node-partition-flux, node-crash-flux), `--strategy <name>`,
//! `--seed <n>`, `--ops <n>`.

use std::path::PathBuf;
use std::process::ExitCode;

use c3_cluster::FaultKind;
use c3_engine::Strategy;
use c3_live::{run_live_on, LiveReport, Transport};
use c3_live_node::{
    node_bin, node_config, parse_addresses, parse_env, run_node, FleetConfig, NodeConfig,
    NODES_ENV, NODE_HETERO_FLEET,
};
use c3_scenarios::ScenarioParams;

struct Args {
    scenario: String,
    strategy: String,
    seed: u64,
    ops: u64,
    attach: Option<PathBuf>,
    emit_configs: Option<PathBuf>,
}

const USAGE: &str = "usage: c3-node-coordinator [--smoke] [--attach <address-file>] \
[--emit-configs <dir>] [--scenario <name>] [--strategy <name>] [--seed <n>] [--ops <n>]";

fn main() -> ExitCode {
    match parse_args().and_then(run) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("c3-node-coordinator: {e}");
            ExitCode::FAILURE
        }
    }
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        scenario: NODE_HETERO_FLEET.to_string(),
        strategy: "C3".to_string(),
        seed: 1,
        ops: 40_000,
        attach: None,
        emit_configs: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .ok_or_else(|| format!("{name} needs a value\n{USAGE}"))
        };
        match flag.as_str() {
            "--smoke" => {} // the default mode; accepted for explicitness
            "--attach" => args.attach = Some(PathBuf::from(value("--attach")?)),
            "--emit-configs" => {
                args.emit_configs = Some(PathBuf::from(value("--emit-configs")?));
            }
            "--scenario" => args.scenario = value("--scenario")?,
            "--strategy" => args.strategy = value("--strategy")?,
            "--seed" => {
                args.seed = value("--seed")?
                    .parse()
                    .map_err(|_| "--seed wants a u64".to_string())?;
            }
            "--ops" => {
                args.ops = value("--ops")?
                    .parse()
                    .map_err(|_| "--ops wants a u64".to_string())?;
            }
            other => return Err(format!("unknown flag {other:?}\n{USAGE}")),
        }
    }
    Ok(args)
}

fn run(args: Args) -> Result<(), String> {
    let params = ScenarioParams::sized(Strategy::named(&args.strategy), args.seed, args.ops);
    let cfg = node_config(&args.scenario, &params).ok_or_else(|| {
        format!(
            "unknown node scenario {:?} (or unsupported strategy {:?})",
            args.scenario, args.strategy
        )
    })?;

    if let Some(dir) = args.emit_configs {
        return emit_configs(&dir, &cfg);
    }

    let live = if let Some(source) = args.attach {
        attach(&source, cfg, &args.scenario)?
    } else {
        let bin = node_bin().ok_or(
            "no c3-live-node binary found (build it, or point C3_NODE_BIN at one)".to_string(),
        )?;
        run_node(&args.scenario, cfg, &bin)
    };
    summarize(&args.scenario, &live);
    Ok(())
}

/// Attach to an already-running fleet: addresses from the file (or
/// `C3_NODES`), crashes cannot be delivered (we own no pids), so the
/// fault plan must carry none — the nodes were configured separately.
fn attach(
    source: &std::path::Path,
    cfg: c3_live::LiveConfig,
    scenario: &str,
) -> Result<LiveReport, String> {
    let text = if source.as_os_str() == NODES_ENV {
        std::env::var(NODES_ENV).map_err(|_| format!("{NODES_ENV} is not set"))?
    } else {
        std::fs::read_to_string(source).map_err(|e| format!("reading {}: {e}", source.display()))?
    };
    let addrs = if source.as_os_str() == NODES_ENV {
        parse_env(&text)
    } else {
        parse_addresses(&text)
    }
    .map_err(|e| e.to_string())?;
    if cfg.faults.events.iter().any(|e| e.kind == FaultKind::Crash) {
        return Err(format!(
            "{scenario} schedules real crashes; attach mode owns no processes to kill — \
             spawn the fleet instead (drop --attach)"
        ));
    }
    let mut fleet = FleetConfig::from_live(&cfg);
    fleet.faults.events.retain(|e| e.kind != FaultKind::Crash);
    let digest = fleet.digest();
    Ok(run_live_on(
        scenario,
        cfg,
        Transport::Remote {
            addrs,
            config_digest: digest,
        },
    ))
}

/// Write one node config file per replica, for hand-started fleets.
fn emit_configs(dir: &std::path::Path, cfg: &c3_live::LiveConfig) -> Result<(), String> {
    let mut fleet = FleetConfig::from_live(cfg);
    fleet.faults.events.retain(|e| e.kind != FaultKind::Crash);
    std::fs::create_dir_all(dir).map_err(|e| format!("creating {}: {e}", dir.display()))?;
    for id in 0..fleet.replicas {
        let node = NodeConfig {
            replica_id: id as u32,
            bind: "127.0.0.1:0".parse().expect("literal address"),
            fleet: fleet.clone(),
        };
        let path = dir.join(format!("node-{id}.kv"));
        std::fs::write(&path, node.to_kv())
            .map_err(|e| format!("writing {}: {e}", path.display()))?;
        println!("{}", path.display());
    }
    println!(
        "# start each with: c3-live-node --config <file>   (collect the id=addr lines \
         into an address file for --attach); fleet digest {:#018x}",
        fleet.digest()
    );
    Ok(())
}

fn summarize(scenario: &str, live: &LiveReport) {
    let report = &live.report;
    let head = report.headline();
    println!(
        "{scenario} [{}] seed {}: {} completions, {:.0} ops/s, p50 {:.2} ms, p99 {:.2} ms, p99.9 {:.2} ms",
        report.strategy,
        report.seed,
        head.completions,
        report.channels.iter().map(|c| c.throughput).sum::<f64>(),
        head.summary.p50_ns as f64 / 1e6,
        head.summary.p99_ns as f64 / 1e6,
        head.summary.p999_ns as f64 / 1e6,
    );
    for channel in &live.health {
        // Per-node resource gauges: report the peak RSS / final CPU the
        // sampler saw, which for a gauge summary is the max.
        if channel.name.starts_with("node") {
            println!(
                "  {}: max {} ({} samples)",
                channel.name, channel.summary.max_ns, channel.completions
            );
        }
    }
    // A smoke that measured nothing is a failure even if nothing panicked.
    assert!(
        head.completions > 0,
        "scenario completed zero measured operations"
    );
}
