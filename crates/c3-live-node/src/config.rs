//! Fleet and node configuration: the kv documents that cross the
//! process boundary, and the digest that keeps a fleet honest.
//!
//! A node process must agree with the coordinator (and with every other
//! node) on the *fleet-wide* parameters — disk model, fault timeline,
//! slowdown script, seed — or the experiment silently measures a
//! chimera. [`FleetConfig`] is exactly that shared slice of
//! [`LiveConfig`], canonically encodable as `key=value` text; its
//! FNV-1a [`FleetConfig::digest`] rides in every node's hello frame so
//! the client hard-aborts on a stale node instead of blending two
//! configurations into one report.

use std::net::SocketAddr;

use c3_cluster::{DiskKind, FaultEvent, FaultKind, FaultPlan, ScriptedSlowdown};
use c3_core::kv::{encode_kv, KvError, KvMap};
use c3_core::Nanos;
use c3_live::{LiveConfig, ReplicaSpec};
use c3_net::proto::Hello;

/// The fleet-wide parameters every node process must share: the subset
/// of [`LiveConfig`] that shapes replica-side behaviour. Client-side
/// knobs (threads, in-flight budget, strategy, key distribution) stay
/// out — they are the coordinator's business and changing them must not
/// change the fleet digest.
#[derive(Clone, Debug, PartialEq)]
pub struct FleetConfig {
    /// Fleet size; each node learns it to validate its own id.
    pub replicas: usize,
    /// Executor-pool size per replica.
    pub concurrency: usize,
    /// Disk model service times are sampled from.
    pub disk: DiskKind,
    /// Read fraction the disk model is parameterized with.
    pub read_fraction: f64,
    /// Nominal record size for GET service-time sampling.
    pub value_bytes: u32,
    /// Fleet seed; each replica derives its own rng stream from it.
    pub seed: u64,
    /// Scripted slowdown windows, replayed against wall time.
    pub scripted: Vec<ScriptedSlowdown>,
    /// Fault timeline, replayed against wall time. For node fleets the
    /// coordinator strips [`FaultKind::Crash`] events first — crashes
    /// are real SIGKILLs delivered by the supervisor, not emulation.
    pub faults: FaultPlan,
}

impl FleetConfig {
    /// The fleet slice of a live config, verbatim.
    pub fn from_live(cfg: &LiveConfig) -> Self {
        Self {
            replicas: cfg.replicas,
            concurrency: cfg.concurrency,
            disk: cfg.disk,
            read_fraction: cfg.read_fraction,
            value_bytes: cfg.value_bytes,
            seed: cfg.seed,
            scripted: cfg.scripted.clone(),
            faults: cfg.faults.clone(),
        }
    }

    /// Canonical kv text. [`FleetConfig::digest`] hashes exactly these
    /// bytes, so field order here is part of the handshake contract.
    pub fn to_kv(&self) -> String {
        encode_kv([
            ("replicas", self.replicas.to_string()),
            ("concurrency", self.concurrency.to_string()),
            ("disk", disk_value(self.disk).to_string()),
            ("read_fraction", self.read_fraction.to_string()),
            ("value_bytes", self.value_bytes.to_string()),
            ("seed", self.seed.to_string()),
            ("scripted", scripted_value(&self.scripted)),
            ("faults", faults_value(&self.faults)),
        ])
    }

    /// Decode from a map that may also hold node-local keys (the node
    /// config document embeds the fleet keys alongside its own).
    pub fn from_kv_map(kv: &mut KvMap) -> Result<Self, KvError> {
        Ok(Self {
            replicas: kv.take_required("replicas", "usize")?,
            concurrency: kv.take_required("concurrency", "usize")?,
            disk: parse_disk(kv.take_required::<String>("disk", "ssd|spinning")?)?,
            read_fraction: kv.take_required("read_fraction", "f64")?,
            value_bytes: kv.take_required("value_bytes", "u32")?,
            seed: kv.take_required("seed", "u64")?,
            scripted: parse_scripted(kv.take_required::<String>(
                "scripted",
                "semicolon-joined node:start_ns:end_ns:multiplier or \"none\"",
            )?)?,
            faults: parse_faults(kv.take_required::<String>(
                "faults",
                "semicolon-joined node:kind:start_ns:end_ns:magnitude or \"none\"",
            )?)?,
        })
    }

    /// Decode a standalone fleet document (no leftovers allowed).
    pub fn from_kv(text: &str) -> Result<Self, KvError> {
        let mut kv = KvMap::parse(text)?;
        let fleet = Self::from_kv_map(&mut kv)?;
        kv.finish()?;
        Ok(fleet)
    }

    /// FNV-1a 64 over the canonical kv text. Two processes agree on the
    /// digest iff they agree on every fleet parameter; the client
    /// compares it against each node's hello.
    pub fn digest(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in self.to_kv().bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        h
    }
}

/// Everything one node process needs: which replica it is, where to
/// bind, and the shared fleet parameters.
#[derive(Clone, Debug, PartialEq)]
pub struct NodeConfig {
    /// This process's replica id within the fleet.
    pub replica_id: u32,
    /// Listen address. Port 0 asks the kernel for an ephemeral port; the
    /// node prints the learned address on stdout. A respawned node gets
    /// its predecessor's learned port here so clients can redial it.
    pub bind: SocketAddr,
    /// The fleet-wide parameters (digest source).
    pub fleet: FleetConfig,
}

impl NodeConfig {
    /// Canonical kv text: node-local keys first, then the fleet keys.
    pub fn to_kv(&self) -> String {
        let mut out = encode_kv([
            ("replica_id", self.replica_id.to_string()),
            ("bind", self.bind.to_string()),
        ]);
        out.push_str(&self.fleet.to_kv());
        out
    }

    /// Decode a node config document.
    pub fn from_kv(text: &str) -> Result<Self, KvError> {
        let mut kv = KvMap::parse(text)?;
        let replica_id = kv.take_required("replica_id", "u32")?;
        let bind = kv.take_required("bind", "socket address")?;
        let fleet = FleetConfig::from_kv_map(&mut kv)?;
        kv.finish()?;
        let cfg = Self {
            replica_id,
            bind,
            fleet,
        };
        if (cfg.replica_id as usize) >= cfg.fleet.replicas {
            return Err(KvError::Invalid {
                key: "replica_id".to_string(),
                value: cfg.replica_id.to_string(),
                expected: "a replica id below `replicas`",
            });
        }
        Ok(cfg)
    }

    /// The replica spec this node runs: fleet parameters plus a hello
    /// announcing `(replica_id, fleet digest)` as the first frame on
    /// every accepted connection.
    pub fn replica_spec(&self) -> ReplicaSpec {
        ReplicaSpec {
            id: self.replica_id as usize,
            concurrency: self.fleet.concurrency,
            disk: self.fleet.disk,
            read_fraction: self.fleet.read_fraction,
            value_bytes: self.fleet.value_bytes,
            seed: self.fleet.seed,
            faults: self.fleet.faults.clone(),
            hello: Some(Hello {
                replica_id: self.replica_id,
                config_digest: self.fleet.digest(),
            }),
        }
    }
}

fn disk_value(disk: DiskKind) -> &'static str {
    match disk {
        DiskKind::Ssd => "ssd",
        DiskKind::Spinning => "spinning",
    }
}

fn parse_disk(v: String) -> Result<DiskKind, KvError> {
    match v.as_str() {
        "ssd" => Ok(DiskKind::Ssd),
        "spinning" => Ok(DiskKind::Spinning),
        _ => Err(KvError::Invalid {
            key: "disk".to_string(),
            value: v,
            expected: "ssd|spinning",
        }),
    }
}

fn scripted_value(windows: &[ScriptedSlowdown]) -> String {
    if windows.is_empty() {
        return "none".to_string();
    }
    windows
        .iter()
        .map(|w| {
            format!(
                "{}:{}:{}:{}",
                w.node,
                w.start.as_nanos(),
                w.end.as_nanos(),
                w.multiplier
            )
        })
        .collect::<Vec<_>>()
        .join(";")
}

fn parse_scripted(v: String) -> Result<Vec<ScriptedSlowdown>, KvError> {
    const EXPECTED: &str = "node:start_ns:end_ns:multiplier";
    if v == "none" {
        return Ok(Vec::new());
    }
    v.split(';')
        .map(|entry| {
            let invalid = || KvError::Invalid {
                key: "scripted".to_string(),
                value: entry.to_string(),
                expected: EXPECTED,
            };
            let mut parts = entry.split(':');
            let window = ScriptedSlowdown {
                node: next_parsed(&mut parts).ok_or_else(invalid)?,
                start: Nanos(next_parsed(&mut parts).ok_or_else(invalid)?),
                end: Nanos(next_parsed(&mut parts).ok_or_else(invalid)?),
                multiplier: next_parsed(&mut parts).ok_or_else(invalid)?,
            };
            if parts.next().is_some() {
                return Err(invalid());
            }
            Ok(window)
        })
        .collect()
}

fn fault_kind_value(kind: FaultKind) -> &'static str {
    match kind {
        FaultKind::Crash => "crash",
        FaultKind::ConnReset => "conn-reset",
        FaultKind::RespDrop => "resp-drop",
        FaultKind::RespDelay => "resp-delay",
    }
}

fn faults_value(plan: &FaultPlan) -> String {
    if plan.is_empty() {
        return "none".to_string();
    }
    plan.events
        .iter()
        .map(|e| {
            format!(
                "{}:{}:{}:{}:{}",
                e.node,
                fault_kind_value(e.kind),
                e.start.as_nanos(),
                e.end.as_nanos(),
                e.magnitude
            )
        })
        .collect::<Vec<_>>()
        .join(";")
}

fn parse_faults(v: String) -> Result<FaultPlan, KvError> {
    const EXPECTED: &str = "node:kind:start_ns:end_ns:magnitude";
    if v == "none" {
        return Ok(FaultPlan::none());
    }
    let events = v
        .split(';')
        .map(|entry| {
            let invalid = || KvError::Invalid {
                key: "faults".to_string(),
                value: entry.to_string(),
                expected: EXPECTED,
            };
            let mut parts = entry.split(':');
            let node = next_parsed(&mut parts).ok_or_else(invalid)?;
            let kind = match parts.next().ok_or_else(invalid)? {
                "crash" => FaultKind::Crash,
                "conn-reset" => FaultKind::ConnReset,
                "resp-drop" => FaultKind::RespDrop,
                "resp-delay" => FaultKind::RespDelay,
                _ => return Err(invalid()),
            };
            let event = FaultEvent {
                node,
                kind,
                start: Nanos(next_parsed(&mut parts).ok_or_else(invalid)?),
                end: Nanos(next_parsed(&mut parts).ok_or_else(invalid)?),
                magnitude: next_parsed(&mut parts).ok_or_else(invalid)?,
            };
            if parts.next().is_some() {
                return Err(invalid());
            }
            Ok(event)
        })
        .collect::<Result<Vec<_>, _>>()?;
    Ok(FaultPlan { events })
}

fn next_parsed<'a, T: std::str::FromStr>(parts: &mut impl Iterator<Item = &'a str>) -> Option<T> {
    parts.next()?.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_fleet() -> FleetConfig {
        FleetConfig {
            replicas: 3,
            concurrency: 4,
            disk: DiskKind::Ssd,
            read_fraction: 0.9,
            value_bytes: 1024,
            seed: 7,
            scripted: vec![ScriptedSlowdown {
                node: 2,
                start: Nanos::ZERO,
                end: Nanos(u64::MAX),
                multiplier: 3.0,
            }],
            faults: FaultPlan {
                events: vec![FaultEvent {
                    node: 1,
                    kind: FaultKind::RespDelay,
                    start: Nanos::from_millis(60),
                    end: Nanos::from_millis(300),
                    magnitude: 40.0,
                }],
            },
        }
    }

    #[test]
    fn fleet_kv_round_trips() {
        let fleet = sample_fleet();
        let decoded = FleetConfig::from_kv(&fleet.to_kv()).expect("decodes");
        assert_eq!(decoded, fleet);
    }

    #[test]
    fn node_kv_round_trips() {
        let node = NodeConfig {
            replica_id: 2,
            bind: "127.0.0.1:0".parse().unwrap(),
            fleet: sample_fleet(),
        };
        let decoded = NodeConfig::from_kv(&node.to_kv()).expect("decodes");
        assert_eq!(decoded, node);
    }

    #[test]
    fn digest_ignores_node_local_keys_but_tracks_fleet_keys() {
        let fleet = sample_fleet();
        let mut other = fleet.clone();
        assert_eq!(fleet.digest(), other.digest());
        other.seed = 8;
        assert_ne!(fleet.digest(), other.digest(), "seed is fleet-wide");
        let node_a = NodeConfig {
            replica_id: 0,
            bind: "127.0.0.1:4100".parse().unwrap(),
            fleet: fleet.clone(),
        };
        let node_b = NodeConfig {
            replica_id: 2,
            bind: "127.0.0.1:4102".parse().unwrap(),
            fleet,
        };
        assert_eq!(
            node_a.fleet.digest(),
            node_b.fleet.digest(),
            "identity and address are not part of the fleet contract"
        );
    }

    #[test]
    fn out_of_range_replica_id_is_rejected() {
        let node = NodeConfig {
            replica_id: 3,
            bind: "127.0.0.1:0".parse().unwrap(),
            fleet: sample_fleet(),
        };
        let err = NodeConfig::from_kv(&node.to_kv()).unwrap_err();
        assert!(matches!(err, KvError::Invalid { ref key, .. } if key == "replica_id"));
    }

    #[test]
    fn replica_spec_announces_identity_and_digest() {
        let node = NodeConfig {
            replica_id: 1,
            bind: "127.0.0.1:0".parse().unwrap(),
            fleet: sample_fleet(),
        };
        let spec = node.replica_spec();
        assert_eq!(spec.id, 1);
        let hello = spec.hello.expect("nodes always announce");
        assert_eq!(hello.replica_id, 1);
        assert_eq!(hello.config_digest, node.fleet.digest());
    }

    #[test]
    fn unknown_keys_are_rejected() {
        let mut text = sample_fleet().to_kv();
        text.push_str("bogus=1\n");
        let err = FleetConfig::from_kv(&text).unwrap_err();
        assert!(matches!(err, KvError::Unknown { ref key } if key == "bogus"));
    }

    #[test]
    fn empty_script_and_plan_encode_as_none() {
        let mut fleet = sample_fleet();
        fleet.scripted.clear();
        fleet.faults = FaultPlan::none();
        assert!(fleet.to_kv().contains("scripted=none"));
        assert!(fleet.to_kv().contains("faults=none"));
        assert_eq!(FleetConfig::from_kv(&fleet.to_kv()).unwrap(), fleet);
    }
}
