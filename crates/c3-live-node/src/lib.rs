//! # c3-live-node — cross-process scale-out for the live backend
//!
//! The in-process [`c3_live`] cluster proves C3 over real sockets, but
//! every replica still shares one address space, one allocator and one
//! scheduler with the client. This crate breaks that boundary: **one
//! replica per OS process**, so the client's view of the fleet is the
//! view a real deployment has — separate heaps, separate run queues,
//! crashes that are actual process deaths.
//!
//! - the `c3-live-node` **binary** runs exactly one
//!   [`ReplicaServer`](c3_live::ReplicaServer) from a kv config file
//!   ([`NodeConfig`]), announces `<id>=<addr>` on stdout, and serves
//!   until stdin closes;
//! - [`NodeFleet`] spawns and supervises a fleet of those processes —
//!   including real SIGKILL crashes and learned-port respawns;
//! - discovery ([`parse_addresses`] / [`NODES_ENV`]) lets a coordinator
//!   attach to an already-running fleet from an address file or
//!   environment variable instead of spawning one;
//! - [`FleetConfig::digest`] (FNV-1a over the canonical fleet kv text)
//!   rides in every node's hello frame, so a client refuses to blend a
//!   stale or misconfigured node into an experiment;
//! - [`run_node`] + [`register_node_scenarios`] surface all of it as
//!   ordinary registry scenarios (`node-hetero-fleet`,
//!   `node-partition-flux`, `node-crash-flux`), with per-process
//!   RSS/CPU sampled into recorder gauge channels — `scenario_sweep`
//!   and the SLO harness run multi-process experiments with zero
//!   changes;
//! - the `c3-node-coordinator` **binary** is the operator face: spawn a
//!   fleet and run a smoke scenario, emit node config files, or attach
//!   to a hand-started fleet.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod discovery;
mod fleet;
mod scenario;

pub use config::{FleetConfig, NodeConfig};
pub use discovery::{encode_addresses, parse_addresses, parse_env, DiscoveryError, NODES_ENV};
pub use fleet::{node_bin, NodeFleet, NODE_BIN_ENV};
pub use scenario::{
    node_config, node_registry, register_node_scenarios, run_node, NODE_CRASH_FLUX,
    NODE_HETERO_FLEET, NODE_PARTITION_FLUX,
};
