//! Multi-process integration: real `c3-live-node` child processes, the
//! unchanged c3-live client driven at them over loopback.
//!
//! These tests spawn actual OS processes (cargo points
//! `CARGO_BIN_EXE_c3-live-node` at the built binary), so they also pin
//! the supervision contract: fleets drain without leaking children
//! (`run_node` asserts zero forced kills), crashed nodes really die and
//! really come back, and a client refuses to measure a fleet whose
//! config digest does not match its own.

use std::path::Path;
use std::time::Duration;

use c3_engine::Strategy;
use c3_live::{
    crash_flux_config, hetero_fleet_config, run_live, run_live_on, LiveConfig, Transport,
    LIVE_HETERO_FLEET,
};
use c3_live_node::{
    node_registry, run_node, FleetConfig, NodeFleet, NODE_CRASH_FLUX, NODE_HETERO_FLEET,
};
use c3_scenarios::ScenarioParams;
use c3_telemetry::{node_cpu_gauge, node_rss_gauge};

fn node_bin() -> &'static Path {
    Path::new(env!("CARGO_BIN_EXE_c3-live-node"))
}

/// A small fleet and short run, to keep process-spawning tests brisk.
fn shrink(mut cfg: LiveConfig, replicas: usize, run_ms: u64) -> LiveConfig {
    cfg.replicas = replicas;
    cfg.run_for = Duration::from_millis(run_ms);
    cfg.faults.events.retain(|e| e.node < replicas);
    cfg.scripted.retain(|w| w.node < replicas);
    cfg
}

#[test]
fn node_fleet_runs_the_hetero_scenario_with_process_gauges() {
    let params = ScenarioParams::sized(Strategy::c3(), 11, 2_000);
    let cfg = shrink(hetero_fleet_config(&params).unwrap(), 3, 500);
    let live = run_node(NODE_HETERO_FLEET, cfg, node_bin());
    assert!(
        live.report.total_completions() > 0,
        "a process fleet serves real operations"
    );
    for replica in 0..3 {
        let rss = live
            .recorder
            .gauge_series(&node_rss_gauge(replica))
            .unwrap_or_else(|| panic!("node {replica} must have an RSS gauge series"));
        assert!(
            !rss.values.is_empty(),
            "node {replica} RSS was sampled at least once"
        );
        assert!(
            rss.values.iter().all(|(_, kb)| *kb > 0),
            "a live process has resident memory"
        );
        assert!(
            live.health
                .iter()
                .any(|c| c.name == node_cpu_gauge(replica)),
            "node {replica} CPU summary lands in the health channels"
        );
    }
}

#[test]
fn node_and_thread_fleets_agree_on_report_shape() {
    let params = ScenarioParams::sized(Strategy::c3(), 5, 2_000);
    let node_cfg = shrink(hetero_fleet_config(&params).unwrap(), 3, 500);
    let thread_cfg = node_cfg.clone();
    let node = run_node(NODE_HETERO_FLEET, node_cfg, node_bin());
    let thread = run_live(LIVE_HETERO_FLEET, thread_cfg);
    let node_channels: Vec<&str> = node
        .report
        .channels
        .iter()
        .map(|c| c.name.as_str())
        .collect();
    let thread_channels: Vec<&str> = thread
        .report
        .channels
        .iter()
        .map(|c| c.name.as_str())
        .collect();
    assert_eq!(
        node_channels, thread_channels,
        "process and thread fleets report through identical channels"
    );
    assert!(node.report.total_completions() > 0);
    assert!(thread.report.total_completions() > 0);
    // Same script, same disks, same client: the two fleets should be in
    // the same performance regime. Loopback-vs-pipe overheads differ, so
    // this is a sanity band, not an equality.
    let ratio = node.report.p99_ms() / thread.report.p99_ms();
    assert!(
        (0.02..50.0).contains(&ratio),
        "node p99 {:.2} ms vs thread p99 {:.2} ms is out of any plausible band",
        node.report.p99_ms(),
        thread.report.p99_ms()
    );
}

#[test]
fn digest_mismatch_aborts_instead_of_measuring_the_wrong_fleet() {
    let params = ScenarioParams::sized(Strategy::c3(), 1, 500);
    let cfg = shrink(hetero_fleet_config(&params).unwrap(), 3, 300);
    let fleet = NodeFleet::spawn(node_bin(), &FleetConfig::from_live(&cfg)).expect("fleet spawns");
    let addrs = fleet.addrs().to_vec();
    let wrong = fleet.digest() ^ 1;
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        run_live_on(
            "node-digest-mismatch",
            cfg,
            Transport::Remote {
                addrs,
                config_digest: wrong,
            },
        )
    }));
    let forced = fleet.shutdown();
    assert_eq!(forced, 0, "aborted runs still drain the fleet cleanly");
    let err = outcome.expect_err("a digest mismatch must abort the run");
    let msg = err
        .downcast_ref::<String>()
        .cloned()
        .unwrap_or_else(|| "non-string panic".to_string());
    assert!(
        msg.contains("digest mismatch"),
        "panic names the handshake failure, got: {msg}"
    );
}

#[test]
fn node_scenarios_run_by_registry_name() {
    let registry = node_registry(node_bin());
    assert!(registry.contains(NODE_HETERO_FLEET));
    assert!(registry.contains(NODE_CRASH_FLUX));
    // Sim and in-process live names ride along untouched.
    assert!(registry.contains(LIVE_HETERO_FLEET));
    assert!(registry.contains("hetero-fleet"));
}

/// The PR 9 hardening claim, re-proved with *real* process deaths: under
/// crash-flux with SIGKILL crashes and supervised respawns, hardened C3
/// keeps its p99 bounded and parks almost nothing. Wall-clock scheduling
/// makes single runs noisy, so the claim must hold on 2 of 3 seeds.
#[test]
fn node_crash_flux_meets_the_hardening_claim() {
    let mut passes = 0;
    let mut observed = Vec::new();
    for seed in [3u64, 5, 7] {
        let params = ScenarioParams::sized(Strategy::c3(), seed, 10_000);
        let cfg = shrink(crash_flux_config(&params).unwrap(), 3, 700);
        assert!(
            cfg.faults
                .events
                .iter()
                .any(|e| e.start < c3_core::Nanos::from_millis(700)),
            "the crash window must fall inside the run"
        );
        let live = run_node(NODE_CRASH_FLUX, cfg, node_bin());
        let issued = live.ops_issued.max(1);
        let parked_fraction = live.lifecycle.parked as f64 / issued as f64;
        let p99_ms = live.report.p99_ms();
        let ok = live.report.total_completions() > 0
            && p99_ms > 0.0
            && p99_ms < 500.0
            && parked_fraction < 0.01;
        observed.push(format!(
            "seed {seed}: p99 {p99_ms:.2} ms, parked {:.3}% ({} of {} issued), reconnects {}",
            parked_fraction * 100.0,
            live.lifecycle.parked,
            issued,
            live.lifecycle.reconnects,
        ));
        if ok {
            passes += 1;
        }
    }
    assert!(
        passes >= 2,
        "hardened C3 must meet the crash-flux claim on 2 of 3 seeds:\n{}",
        observed.join("\n")
    );
}
