//! Property tests for the process-boundary codecs: fleet/node kv
//! documents and address-file/`C3_NODES` discovery. Everything that
//! crosses an exec boundary must round-trip bit-exactly, and every
//! malformed or sparse input must fail loudly — a silently shifted
//! replica index would have the client grading the wrong node.

use std::net::{Ipv4Addr, SocketAddr};

use c3_cluster::{FaultEvent, FaultKind, FaultPlan, ScriptedSlowdown};
use c3_core::Nanos;
use c3_live_node::{
    encode_addresses, parse_addresses, parse_env, DiscoveryError, FleetConfig, NodeConfig,
};
use proptest::prelude::*;

fn addr(host: u8, port: u16) -> SocketAddr {
    (Ipv4Addr::new(127, 0, host, 1), port.max(1)).into()
}

fn fleet_from(
    replicas: usize,
    seed: u64,
    windows: Vec<(u8, u32, u32, u32)>,
    faults: Vec<(u8, u8, u32, u32, u32)>,
) -> FleetConfig {
    FleetConfig {
        replicas,
        concurrency: 1 + replicas % 4,
        disk: if seed.is_multiple_of(2) {
            c3_cluster::DiskKind::Ssd
        } else {
            c3_cluster::DiskKind::Spinning
        },
        read_fraction: (seed % 101) as f64 / 100.0,
        value_bytes: 64 + (seed % 4096) as u32,
        seed,
        scripted: windows
            .into_iter()
            .map(|(node, start, span, mult)| ScriptedSlowdown {
                node: node as usize,
                start: Nanos(u64::from(start)),
                end: Nanos(u64::from(start) + u64::from(span) + 1),
                multiplier: 1.0 + f64::from(mult) / 16.0,
            })
            .collect(),
        faults: FaultPlan {
            events: faults
                .into_iter()
                .map(|(node, kind, start, span, magnitude)| FaultEvent {
                    node: node as usize,
                    kind: match kind % 4 {
                        0 => FaultKind::Crash,
                        1 => FaultKind::ConnReset,
                        2 => FaultKind::RespDrop,
                        _ => FaultKind::RespDelay,
                    },
                    start: Nanos(u64::from(start)),
                    end: Nanos(u64::from(start) + u64::from(span) + 1),
                    magnitude: f64::from(magnitude) / 8.0,
                })
                .collect(),
        },
    }
}

proptest! {
    #[test]
    fn fleet_kv_round_trips(
        replicas in 1usize..9,
        seed in 0u64..u64::MAX,
        windows in proptest::collection::vec((0u8..8, 0u32..1_000_000, 0u32..1_000_000, 0u32..64), 0..5),
        faults in proptest::collection::vec((0u8..8, 0u8..8, 0u32..1_000_000, 0u32..1_000_000, 0u32..64), 0..5),
    ) {
        let fleet = fleet_from(replicas, seed, windows, faults);
        let decoded = FleetConfig::from_kv(&fleet.to_kv()).expect("canonical text decodes");
        prop_assert_eq!(&decoded, &fleet);
        prop_assert_eq!(decoded.digest(), fleet.digest(), "digest is a pure function of the text");
    }

    #[test]
    fn node_kv_round_trips_and_digest_ignores_identity(
        replicas in 1usize..9,
        seed in 0u64..u64::MAX,
        id in 0u8..8,
        host in 0u8..255,
        port in 1u16..u16::MAX,
    ) {
        let fleet = fleet_from(replicas, seed, Vec::new(), Vec::new());
        let node = NodeConfig {
            replica_id: u32::from(id) % replicas as u32,
            bind: addr(host, port),
            fleet: fleet.clone(),
        };
        let decoded = NodeConfig::from_kv(&node.to_kv()).expect("canonical text decodes");
        prop_assert_eq!(decoded.fleet.digest(), fleet.digest());
        prop_assert_eq!(decoded, node);
    }

    #[test]
    fn any_fleet_digest_tracks_the_seed(replicas in 1usize..9, seed in 0u64..u64::MAX - 1) {
        let a = fleet_from(replicas, seed, Vec::new(), Vec::new());
        let mut b = a.clone();
        b.seed = seed + 1;
        prop_assert!(a.digest() != b.digest(), "fleet-wide knobs must move the digest");
    }

    #[test]
    fn address_files_round_trip(
        hosts in proptest::collection::vec((0u8..255, 1u16..u16::MAX), 1..12),
    ) {
        let addrs: Vec<SocketAddr> = hosts.into_iter().map(|(h, p)| addr(h, p)).collect();
        prop_assert_eq!(parse_addresses(&encode_addresses(&addrs)).expect("dense file"), addrs);
    }

    #[test]
    fn dropping_any_interior_line_is_a_gap(
        hosts in proptest::collection::vec((0u8..255, 1u16..u16::MAX), 2..8),
        drop_at in 0usize..7,
    ) {
        let addrs: Vec<SocketAddr> = hosts.into_iter().map(|(h, p)| addr(h, p)).collect();
        // Only interior drops leave a gap: losing the *last* line yields
        // a smaller but still dense (and thus valid) fleet.
        prop_assume!(drop_at < addrs.len() - 1);
        let text: String = encode_addresses(&addrs)
            .lines()
            .enumerate()
            .filter(|(i, _)| *i != drop_at)
            .map(|(_, l)| format!("{l}\n"))
            .collect();
        prop_assert_eq!(parse_addresses(&text), Err(DiscoveryError::Gap { missing: drop_at }));
    }

    #[test]
    fn env_lists_round_trip_under_any_separator(
        hosts in proptest::collection::vec((0u8..255, 1u16..u16::MAX), 1..8),
        sep in 0u8..4,
    ) {
        let addrs: Vec<SocketAddr> = hosts.into_iter().map(|(h, p)| addr(h, p)).collect();
        let sep = [",", " ", "\n", ", "][sep as usize % 4];
        let value = addrs.iter().map(|a| a.to_string()).collect::<Vec<_>>().join(sep);
        prop_assert_eq!(parse_env(&value).expect("well-formed list"), addrs);
    }

    #[test]
    fn corrupting_one_fleet_value_never_decodes_silently(
        replicas in 1usize..9,
        seed in 0u64..u64::MAX,
        line in 0usize..8,
    ) {
        let fleet = fleet_from(replicas, seed, Vec::new(), Vec::new());
        let text: String = fleet
            .to_kv()
            .lines()
            .enumerate()
            .map(|(i, l)| {
                if i == line {
                    let key = l.split_once('=').expect("canonical line").0;
                    format!("{key}=definitely-not-a-{key}\n")
                } else {
                    format!("{l}\n")
                }
            })
            .collect();
        prop_assert!(FleetConfig::from_kv(&text).is_err(), "corrupt value for line {} must not parse", line);
    }
}
