//! Micro-benchmark: the end-to-end C3 client decision loop
//! (select, send accounting, response processing) against a 50-server
//! fleet with RF = 3 groups, as in the paper's simulator setup.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use c3_core::{C3Config, C3State, Feedback, Nanos, SendDecision};

fn bench_scheduler(c: &mut Criterion) {
    let cfg = C3Config {
        initial_rate: 1_000.0,
        ..C3Config::for_clients(150)
    };

    c.bench_function("c3_try_send_rf3", |b| {
        let mut st = C3State::new(50, cfg, Nanos::ZERO);
        let mut t = 0u64;
        let mut g = 0usize;
        b.iter(|| {
            t += 20_000;
            g = (g + 1) % 50;
            let group = [g, (g + 1) % 50, (g + 2) % 50];
            match st.try_send(&group, Nanos(t)) {
                SendDecision::Send(s) => {
                    st.record_send(s);
                    st.on_response(
                        s,
                        Nanos::from_millis(4),
                        Some(&Feedback::new(3, Nanos::from_millis(3))),
                        Nanos(t + 4_000_000),
                    );
                    black_box(s)
                }
                SendDecision::Backpressure { .. } => black_box(0),
            }
        })
    });
}

criterion_group!(benches, bench_scheduler);
criterion_main!(benches);
