//! Micro-benchmark: workload generation (Zipfian sampling dominates the
//! YCSB-style generators).

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use c3_workload::{exp_sample, ScrambledZipfian, WorkloadMix, Zipfian};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn bench_workload(c: &mut Criterion) {
    let mut rng = SmallRng::seed_from_u64(7);

    let zipf = Zipfian::ycsb(10_000_000);
    c.bench_function("zipfian_sample_10M", |b| {
        b.iter(|| black_box(zipf.sample(&mut rng)))
    });

    let scrambled = ScrambledZipfian::ycsb(10_000_000);
    c.bench_function("scrambled_zipfian_sample_10M", |b| {
        b.iter(|| black_box(scrambled.sample(&mut rng)))
    });

    let mix = WorkloadMix::read_heavy();
    c.bench_function("mix_sample", |b| b.iter(|| black_box(mix.sample(&mut rng))));

    c.bench_function("exp_sample", |b| {
        b.iter(|| black_box(exp_sample(&mut rng, 4.0)))
    });
}

criterion_group!(benches, bench_workload);
criterion_main!(benches);
