//! Macro-benchmark: end-to-end simulator throughput, which bounds how
//! large a parameter sweep the harness can afford.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use c3_core::Nanos;
use c3_sim::{SimConfig, Simulation, Strategy};

fn small_cfg(strategy: Strategy) -> SimConfig {
    SimConfig {
        servers: 20,
        clients: 40,
        generators: 40,
        total_requests: 20_000,
        fluctuation_interval: Nanos::from_millis(100),
        strategy,
        seed: 9,
        ..SimConfig::default()
    }
}

fn bench_simulator(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulator_20k_requests");
    group.sample_size(10);
    for strategy in [Strategy::c3(), Strategy::lor(), Strategy::oracle()] {
        group.bench_function(strategy.label().to_string(), |b| {
            b.iter_batched(
                || Simulation::new(small_cfg(strategy.clone())),
                |sim| sim.run(),
                BatchSize::PerIteration,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_simulator);
criterion_main!(benches);
