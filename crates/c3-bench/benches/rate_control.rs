//! Micro-benchmark: the token bucket and cubic rate adaptation, which sit
//! on the per-request fast path of every C3 client.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use c3_core::{C3Config, Nanos, RateLimiter};

fn bench_rate(c: &mut Criterion) {
    let cfg = C3Config::default();

    c.bench_function("rate_try_acquire", |b| {
        let mut rl = RateLimiter::new(&cfg, Nanos::ZERO);
        let mut t = 0u64;
        b.iter(|| {
            t += 50_000; // 0.05 ms per call
            black_box(rl.try_acquire(Nanos(t)))
        })
    });

    c.bench_function("rate_on_response", |b| {
        let mut rl = RateLimiter::new(&cfg, Nanos::ZERO);
        let mut t = 0u64;
        b.iter(|| {
            t += 50_000;
            rl.on_response(Nanos(t));
            black_box(rl.srate())
        })
    });

    c.bench_function("rate_full_cycle", |b| {
        let mut rl = RateLimiter::new(&cfg, Nanos::ZERO);
        let mut t = 0u64;
        b.iter(|| {
            t += 50_000;
            if rl.try_acquire(Nanos(t)) {
                rl.on_response(Nanos(t + 2_000_000));
            }
            black_box(rl.srate())
        })
    });
}

criterion_group!(benches, bench_rate);
criterion_main!(benches);
