//! Micro-benchmark: the C3 scoring function and replica ranking.
//!
//! Section 2.3 of the paper criticizes Dynamic Snitching's expensive score
//! recomputation; C3's per-request scoring must therefore be cheap. This
//! bench verifies scoring and ranking cost tens of nanoseconds.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use c3_core::{rank_by_score, score, C3Config, TrackerSnapshot};

fn snapshots(n: usize) -> Vec<TrackerSnapshot> {
    (0..n)
        .map(|i| TrackerSnapshot {
            outstanding: (i % 5) as u32,
            queue_size: Some(1.0 + i as f64),
            service_time_ms: Some(2.0 + (i % 7) as f64),
            response_time_ms: Some(3.0 + (i % 11) as f64),
        })
        .collect()
}

fn bench_scoring(c: &mut Criterion) {
    let cfg = C3Config::for_clients(150);
    let snaps = snapshots(64);

    c.bench_function("score_single_server", |b| {
        b.iter(|| score(black_box(&cfg), black_box(&snaps[7])))
    });

    c.bench_function("rank_replica_group_rf3", |b| {
        let mut group = vec![3usize, 17, 42];
        b.iter(|| {
            rank_by_score(black_box(&cfg), black_box(&mut group), |s| snaps[s]);
            group[0]
        })
    });

    c.bench_function("rank_replica_group_rf15", |b| {
        let mut group: Vec<usize> = (0..15).collect();
        b.iter(|| {
            rank_by_score(black_box(&cfg), black_box(&mut group), |s| snaps[s]);
            group[0]
        })
    });
}

criterion_group!(benches, bench_scoring);
criterion_main!(benches);
