//! Micro-benchmark: the latency histogram on the simulators' hot path.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use c3_metrics::LogHistogram;

fn bench_histogram(c: &mut Criterion) {
    c.bench_function("histogram_record", |b| {
        let mut h = LogHistogram::new();
        let mut x = 1u64;
        b.iter(|| {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            h.record(black_box(x % 100_000_000));
        })
    });

    c.bench_function("histogram_p999", |b| {
        let mut h = LogHistogram::new();
        let mut x = 1u64;
        for _ in 0..1_000_000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            h.record(x % 100_000_000);
        }
        b.iter(|| black_box(h.value_at_quantile(0.999)))
    });

    c.bench_function("histogram_merge", |b| {
        let mut a = LogHistogram::new();
        let mut other = LogHistogram::new();
        for v in 1..10_000u64 {
            other.record(v * 7919 % 50_000_000);
        }
        b.iter(|| a.merge(black_box(&other)))
    });
}

criterion_group!(benches, bench_histogram);
criterion_main!(benches);
