//! Throughput-at-SLO experiments: the paper's "C3 sustains a higher rate
//! before the tail crosses the limit" frame, produced by the engine's
//! SLO-seeking rate controller over both backends.
//!
//! For every `(scenario, strategy, seed)` cell the harness:
//!
//! 1. **calibrates** a rate bracket — cluster-backed and live scenarios
//!    run once closed-loop (their saturation throughput anchors the
//!    bracket's high end); multi-tenant uses its closed-form fleet
//!    capacity,
//! 2. **searches** the bracket by deterministic bisection
//!    ([`c3_engine::SloSearch`]) for the maximum offered rate whose
//!    exact-reservoir p99 still meets the scenario's SLO,
//! 3. reports the per-cell maximum, the full probe trace, and the
//!    monotone-in-rate check in a fingerprinted
//!    [`c3_engine::SloReport`], written to `BENCH_slo.json`.
//!
//! Sim cells are bit-deterministic (the determinism tier compares
//! 1-vs-4-thread sweep fingerprints); live cells measure wall time over
//! real sockets and are ranked, not fingerprint-pinned.

use c3_engine::{
    ProbeMeasurement, RateWindow, SloCell, SloPredicate, SloReport, SloSweep, Strategy,
};
use c3_live::live_registry;
use c3_metrics::Table;
use c3_scenarios::{
    RunTuning, ScenarioParams, ScenarioRegistry, CRASH_FLUX, FLAKY_NET, HETERO_FLEET, MULTI_TENANT,
    PARTITION_FLUX,
};

use crate::support::{banner, fan_out_threads, Scale, SkipLog};

/// One scenario's SLO sweep shape.
#[derive(Clone, Copy, Debug)]
pub struct SloScenario {
    /// Scenario registry name.
    pub name: &'static str,
    /// The latency SLO cells must hold.
    pub slo: SloPredicate,
    /// Bisection grid intervals (resolution = bracket width / steps).
    pub steps: u32,
    /// Whether this runs over real sockets (serialized, wall-time-based).
    pub live: bool,
}

/// The sim-backed sweep tier: the three library scenarios, each with a
/// p99 SLO placed **above the scenario's adversity service-time floor and
/// below its saturation blow-up**, so pass/fail is decided by queueing —
/// which is monotone in rate — rather than by whether a handful of
/// blackout-struck requests straddle the 1% mark:
///
/// - `hetero-fleet`: the slow tier's miss path is `exp(24 ms)`, so even
///   an unloaded tail sits near ~100–250 ms for any strategy that ever
///   touches the tier. 350 ms clears that floor; open-loop saturation
///   queueing blows far past it.
/// - `partition-flux`: a blackout-struck read costs `~exp(200 ms)`, so
///   tails flicker in the 300–550 ms band at the 1% boundary. 600 ms sits
///   above the single-blackout band and below queue divergence.
/// - `multi-tenant`: no time-based adversity — the tail is pure queueing,
///   so a tight interactive-tenant bound works directly.
/// - `crash-flux` / `flaky-net`: the hardened lifecycle (75–100 ms
///   deadline, retries, hedging) caps what a fault episode can cost one
///   read at a few deadline multiples — and at overload it *parks* what
///   it cannot complete, which keeps the p99-of-completions flat instead
///   of blowing up. Pass/fail is therefore shed-decided: a probe that
///   parks >1% of its ops fails regardless of its metric value, and a
///   cell that sheds even at the bracket floor reports
///   `floor_reason: "timeout"` in the JSON. 400 ms clears the worst
///   permitted retry chain (75 ms × 4 + backoff).
pub fn sim_slo_scenarios() -> Vec<SloScenario> {
    vec![
        SloScenario {
            name: HETERO_FLEET,
            slo: SloPredicate::p99_under_ms(350.0),
            steps: 32,
            live: false,
        },
        SloScenario {
            name: PARTITION_FLUX,
            slo: SloPredicate::p99_under_ms(600.0),
            steps: 32,
            live: false,
        },
        SloScenario {
            name: MULTI_TENANT,
            slo: SloPredicate::p99_under_ms(20.0),
            steps: 32,
            live: false,
        },
        SloScenario {
            name: CRASH_FLUX,
            slo: SloPredicate::p99_under_ms(400.0),
            steps: 32,
            live: false,
        },
        SloScenario {
            name: FLAKY_NET,
            slo: SloPredicate::p99_under_ms(400.0),
            steps: 32,
            live: false,
        },
    ]
}

/// The live sweep tier: the same adversity scripts over loopback
/// sockets, with the same bound-placement rule as the sim tier (above
/// the adversity service floor, below saturation). Coarser grids —
/// every probe costs 1.5 s of wall time:
///
/// - `live-hetero-fleet` sleeps SSD service times with a permanent 3x
///   tier, so the slow tier's miss path is `exp(2.4 ms)` plus queueing;
/// - `live-partition-flux` blackouts multiply SSD misses 30x, so a
///   struck read sleeps `~exp(24 ms)` plus queueing.
///
/// With the multiplexed client these cells are server-decided, and DS
/// can score a legitimate **0** on `live-partition-flux`: even at the
/// bracket floor its interval-frozen rankings park more than 1% of the
/// run's ops on a blacked-out replica whose queue now actually builds
/// (the old serial client physically capped that queue at the worker
/// count, which is why pre-multiplex DS numbers looked sustainable).
pub fn live_slo_scenarios() -> Vec<SloScenario> {
    vec![
        SloScenario {
            name: c3_live::LIVE_HETERO_FLEET,
            slo: SloPredicate::p99_under_ms(120.0),
            steps: 12,
            live: true,
        },
        SloScenario {
            name: c3_live::LIVE_PARTITION_FLUX,
            slo: SloPredicate::p99_under_ms(150.0),
            steps: 12,
            live: true,
        },
        SloScenario {
            name: c3_live::LIVE_CRASH_FLUX,
            slo: SloPredicate::p99_under_ms(150.0),
            steps: 12,
            live: true,
        },
        SloScenario {
            name: c3_live::LIVE_FLAKY_NET,
            slo: SloPredicate::p99_under_ms(200.0),
            steps: 12,
            live: true,
        },
    ]
}

/// Strategies swept per tier. The sim tier includes the oracle — which
/// the cluster-backed scenarios skip through the shared cell-skip path —
/// and the static baselines; the live tier keeps the wall-clock budget on
/// the paper's headline pair.
pub fn slo_strategies(live: bool) -> Vec<Strategy> {
    if live {
        vec![Strategy::c3(), Strategy::dynamic_snitching()]
    } else {
        vec![
            Strategy::c3(),
            Strategy::dynamic_snitching(),
            Strategy::lor(),
            Strategy::power_of_two(),
            Strategy::primary_only(),
            Strategy::oracle(),
        ]
    }
}

/// Bracket shape around a calibrated capacity estimate: the SLO
/// threshold for a competitive strategy sits well below saturation, so
/// the bracket spans a quarter of the anchor to comfortably past it.
const WINDOW_LO_FRACTION: f64 = 0.25;
const WINDOW_HI_FRACTION: f64 = 1.25;

/// Run one scenario's sweep: `strategies × seeds` cells, each calibrated
/// and searched independently, fanned out over up to `threads` workers.
/// Live specs ignore `threads` and run their cells one at a time —
/// probes measure wall time over real sockets, and a parallel sibling
/// cell stealing CPU mid-probe would inflate its tail (the probes inside
/// a cell are sequential anyway).
pub fn sweep_scenario(
    spec: &SloScenario,
    registry: &ScenarioRegistry,
    seeds: &[u64],
    ops: u64,
    threads: usize,
) -> SloReport {
    let threads = if spec.live { 1 } else { threads };
    let strategies = slo_strategies(spec.live);
    let cells: Vec<SloCell> = strategies
        .iter()
        .flat_map(|st| {
            seeds
                .iter()
                .map(|&seed| SloCell::new(spec.name, st.name(), seed))
        })
        .collect();
    let steps = spec.steps;
    let sweep = SloSweep::new(spec.slo);
    let slo = spec.slo;
    sweep.run(
        &cells,
        threads,
        |cell| {
            let anchor = calibrate_anchor(registry, cell, ops)?;
            Ok(RateWindow::new(
                anchor * WINDOW_LO_FRACTION,
                anchor * WINDOW_HI_FRACTION,
                steps,
            ))
        },
        |cell, rate| {
            let params = ScenarioParams::tuned(
                Strategy::named(&cell.strategy),
                cell.seed,
                ops,
                RunTuning {
                    offered_rate: Some(rate),
                    exact_latency: true,
                    ..RunTuning::default()
                },
            );
            let report = registry
                .run(&cell.scenario, &params)
                .map_err(|e| e.to_string())?;
            // A hardened lifecycle parks what it cannot complete, so at
            // overload the p99 *of the completions* stays flat — the
            // metric alone would call a collapsing rate sustained. A probe
            // that parks more than 1% of its ops is shed, which fails it
            // and names the cause (`floor_reason`: "timeout" vs
            // "slo-miss") when a cell collapses at the bracket floor.
            let ops = report.total_completions() + report.parked;
            Ok(ProbeMeasurement {
                value_ms: slo.metric.value_ms(&report.headline().summary),
                timed_out: report.parked as f64 > 0.01 * ops as f64,
            })
        },
    )
}

/// The rate anchor the cell's bracket is built around.
///
/// Multi-tenant has a closed-form capacity; everything else runs the cell
/// once in its native closed loop (the same ops/seed/strategy) and uses
/// the measured saturation throughput across all channels. Calibration is
/// also where unsupported cells surface: the registry error becomes the
/// skip reason, identically to `scenario_sweep`'s skip path.
fn calibrate_anchor(registry: &ScenarioRegistry, cell: &SloCell, ops: u64) -> Result<f64, String> {
    if cell.scenario == MULTI_TENANT {
        return Ok(c3_scenarios::MultiTenantConfig::default().capacity());
    }
    let params = ScenarioParams::sized(Strategy::named(&cell.strategy), cell.seed, ops);
    let report = registry
        .run(&cell.scenario, &params)
        .map_err(|e| e.to_string())?;
    let total: f64 = report.channels.iter().map(|c| c.throughput).sum();
    if !(total.is_finite() && total > 0.0) {
        return Err(format!("calibration measured no throughput ({total})"));
    }
    Ok(total)
}

/// Run the whole tier: every sim scenario (and, when `include_live`, the
/// live twins), printing per-scenario tables and a deduped skip summary.
/// Returns `(spec, report)` pairs in sweep order.
pub fn throughput_at_slo(
    scale: Scale,
    runs: u64,
    include_live: bool,
) -> Vec<(SloScenario, SloReport)> {
    banner(
        "SLO",
        "throughput at SLO: max sustainable rate by bisection",
    );
    let seeds: Vec<u64> = (1..=runs).collect();
    let ops = scale.scenario_ops();
    let registry = live_registry();
    let mut out = Vec::new();
    let mut skips = SkipLog::new();

    let mut specs = sim_slo_scenarios();
    if include_live {
        specs.extend(live_slo_scenarios());
    }
    // `C3_SLO_ONLY=name,name` restricts the tier (debugging / CI splits).
    if let Ok(only) = std::env::var("C3_SLO_ONLY") {
        let keep: Vec<&str> = only.split(',').map(str::trim).collect();
        for name in &keep {
            assert!(
                specs.iter().any(|s| s.name == *name),
                "C3_SLO_ONLY names unknown scenario {name:?} (available: {:?})",
                specs.iter().map(|s| s.name).collect::<Vec<_>>()
            );
        }
        specs.retain(|s| keep.contains(&s.name));
    }
    for spec in specs {
        println!(
            "\nscenario {} — SLO {}, {} strategies × {} seeds, {} ops/probe:",
            spec.name,
            spec.slo,
            slo_strategies(spec.live).len(),
            seeds.len(),
            ops,
        );
        let report = sweep_scenario(&spec, &registry, &seeds, ops, fan_out_threads());
        for s in report.skipped() {
            skips.note(&s.cell.scenario, &s.cell.strategy, &s.reason);
        }
        print_scenario_table(&spec, &report, &seeds);
        out.push((spec, report));
    }
    skips.print_summary();
    println!(
        "\nReading: higher max-sustainable-rate at the SLO is the paper's\n\
         throughput-at-SLO claim. '^' cells passed the SLO at the bracket\n\
         ceiling (range-limited); '*' cells failed at the bracket floor\n\
         itself (no rate in the window sustains the SLO — rendered as 0,\n\
         `fails_at_bracket_floor` in the JSON, with `floor_reason` naming\n\
         the cause: \"timeout\" when the floor probe shed ops to timeouts,\n\
         \"slo-miss\" when the completed tail crossed the limit); '!'\n\
         flags a non-monotone probe trace."
    );
    out
}

fn print_scenario_table(spec: &SloScenario, report: &SloReport, seeds: &[u64]) {
    let mut header = vec!["strategy".to_string()];
    header.extend(seeds.iter().map(|s| format!("seed {s} (ops/s)")));
    header.push("mean".into());
    header.push("probes".into());
    let mut table = Table::new(header);
    for strategy in slo_strategies(spec.live) {
        if !report.ran().any(|r| r.cell.strategy == strategy.name()) {
            continue; // every seed skipped (e.g. ORA on a cluster backend)
        }
        // Key columns by seed, not by ran-cell position: a cell skipped
        // for one seed only (failed calibration, transient live error)
        // must show as a hole in that seed's column, not shift the row.
        let mut row = vec![strategy.name().to_string()];
        let mut sum = 0.0;
        let mut ran = 0u32;
        let mut probes = 0;
        for &seed in seeds {
            match report.cell(spec.name, strategy.name(), seed) {
                Some(cell) => {
                    let rate = cell.outcome.max_rate.unwrap_or(0.0);
                    sum += rate;
                    ran += 1;
                    probes += cell.outcome.probes();
                    let mut mark = String::new();
                    if cell.outcome.fails_at_bracket_floor() {
                        mark.push('*');
                    }
                    if cell.outcome.saturated {
                        mark.push('^');
                    }
                    if !cell.outcome.monotone {
                        mark.push('!');
                    }
                    row.push(format!("{rate:.0}{mark}"));
                }
                None => row.push("—".into()),
            }
        }
        row.push(format!("{:.0}", sum / f64::from(ran.max(1))));
        row.push(probes.to_string());
        table.row(row);
    }
    println!("{table}");
}

/// Quote a string as a JSON string literal. Rust's `{:?}` is close but
/// not JSON (`\u{e9}`-style escapes), so backend error messages — which
/// can carry OS-localized text — get escaped here instead.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Serialize the sweep tier to the `BENCH_slo.json` schema.
pub fn slo_json(results: &[(SloScenario, SloReport)]) -> String {
    let mut json = String::new();
    json.push_str("{\n  \"schema\": 2,\n  \"scenarios\": [\n");
    for (i, (spec, report)) in results.iter().enumerate() {
        json.push_str("    {\n");
        json.push_str(&format!("      \"scenario\": {},\n", json_str(spec.name)));
        json.push_str(&format!("      \"live\": {},\n", spec.live));
        json.push_str(&format!(
            "      \"slo\": {{\"metric\": {}, \"max_ms\": {}}},\n",
            json_str(spec.slo.metric.label()),
            spec.slo.max_ms
        ));
        json.push_str(&format!(
            "      \"fingerprint\": \"{:#018x}\",\n",
            report.fingerprint()
        ));
        json.push_str("      \"cells\": [\n");
        let ran: Vec<_> = report.ran().collect();
        for (j, cell) in ran.iter().enumerate() {
            json.push_str(&format!(
                "        {{\"strategy\": {}, \"seed\": {}, \"max_rate\": {}, \
                 \"fails_at_bracket_floor\": {}, \"floor_reason\": {}, \
                 \"saturated\": {}, \"monotone\": {}, \"window\": [{}, {}], \"trace\": [",
                json_str(&cell.cell.strategy),
                cell.cell.seed,
                cell.outcome.max_rate.unwrap_or(0.0),
                cell.outcome.fails_at_bracket_floor(),
                match cell.outcome.floor_reason() {
                    Some(reason) => json_str(reason),
                    None => "null".to_string(),
                },
                cell.outcome.saturated,
                cell.outcome.monotone,
                cell.window.lo,
                cell.window.hi,
            ));
            for (k, p) in cell.outcome.trace.iter().enumerate() {
                json.push_str(&format!(
                    "[{:.3}, {:.4}, {}, {}]{}",
                    p.rate,
                    p.value_ms,
                    p.pass,
                    p.timed_out,
                    if k + 1 < cell.outcome.trace.len() {
                        ", "
                    } else {
                        ""
                    }
                ));
            }
            json.push_str(&format!(
                "]}}{}\n",
                if j + 1 < ran.len() { "," } else { "" }
            ));
        }
        json.push_str("      ],\n");
        json.push_str("      \"skipped\": [\n");
        let skipped: Vec<_> = report.skipped().collect();
        for (j, s) in skipped.iter().enumerate() {
            json.push_str(&format!(
                "        {{\"strategy\": {}, \"seed\": {}, \"reason\": {}}}{}\n",
                json_str(&s.cell.strategy),
                s.cell.seed,
                json_str(&s.reason),
                if j + 1 < skipped.len() { "," } else { "" }
            ));
        }
        json.push_str("      ]\n");
        json.push_str(&format!(
            "    }}{}\n",
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    json
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiers_name_library_scenarios() {
        let sim = sim_slo_scenarios();
        assert_eq!(sim.len(), 5);
        assert!(sim.iter().all(|s| !s.live));
        let live = live_slo_scenarios();
        assert_eq!(live.len(), 4);
        assert!(live.iter().all(|s| s.live));
        let reg = live_registry();
        for s in sim.iter().chain(live.iter()) {
            assert!(reg.contains(s.name), "{} must be registered", s.name);
        }
    }

    #[test]
    fn multi_tenant_anchor_is_the_formula_capacity() {
        let reg = live_registry();
        let cell = SloCell::new(MULTI_TENANT, "C3", 1);
        let anchor = calibrate_anchor(&reg, &cell, 2_000).unwrap();
        assert_eq!(
            anchor,
            c3_scenarios::MultiTenantConfig::default().capacity()
        );
    }

    #[test]
    fn unsupported_cells_skip_through_calibration() {
        let reg = live_registry();
        let cell = SloCell::new(HETERO_FLEET, "ORA", 1);
        let err = calibrate_anchor(&reg, &cell, 2_000).unwrap_err();
        assert!(err.contains("cannot drive"), "got {err}");
    }

    #[test]
    fn partial_seed_skips_render_as_holes_not_panics() {
        // One strategy loses exactly one seed to a calibration error: the
        // table must key columns by seed (a "—" hole) instead of shifting
        // ran cells under the wrong headers and tripping Table's width
        // assert after an hours-long sweep.
        let spec = SloScenario {
            name: "toy",
            slo: SloPredicate::p99_under_ms(20.0),
            steps: 4,
            live: false,
        };
        let seeds = [1u64, 2, 3];
        let cells: Vec<SloCell> = slo_strategies(false)
            .iter()
            .flat_map(|s| {
                seeds
                    .iter()
                    .map(|&seed| SloCell::new("toy", s.name(), seed))
            })
            .collect();
        let report = SloSweep::new(spec.slo).run(
            &cells,
            1,
            |cell| {
                if cell.strategy == "C3" && cell.seed == 2 {
                    Err("calibration measured no throughput".into())
                } else {
                    Ok(RateWindow::new(100.0, 2_000.0, 4))
                }
            },
            |_, rate| Ok(rate / 60.0),
        );
        assert_eq!(report.skipped().count(), 1);
        print_scenario_table(&spec, &report, &seeds); // must not panic
    }

    #[test]
    fn json_strings_are_escaped() {
        assert_eq!(json_str("plain"), "\"plain\"");
        assert_eq!(json_str("q\"b\\c"), "\"q\\\"b\\\\c\"");
        assert_eq!(json_str("a\nb\tc\u{1}"), "\"a\\nb\\tc\\u0001\"");
        assert_eq!(json_str("café"), "\"café\"", "non-ASCII passes through");
    }

    #[test]
    fn sweep_emits_valid_json_shape() {
        // A tiny real sweep: one scenario, pruned strategy set via a
        // direct sweep_scenario call at small ops.
        let spec = SloScenario {
            name: MULTI_TENANT,
            slo: SloPredicate::p99_under_ms(20.0),
            steps: 4,
            live: false,
        };
        let reg = ScenarioRegistry::with_defaults();
        let report = sweep_scenario(&spec, &reg, &[1], 2_000, 1);
        assert!(report.ran().count() > 0);
        let json = slo_json(&[(spec, report)]);
        assert!(json.contains("\"scenario\": \"multi-tenant\""));
        assert!(json.contains("\"max_rate\""));
        assert!(json.contains("\"fails_at_bracket_floor\""));
        assert!(json.contains("\"floor_reason\""));
        assert!(json.contains("\"fingerprint\""));
    }

    #[test]
    fn floor_failures_name_their_reason_in_the_json() {
        // Two toy cells, both collapsing at the bracket floor: one whose
        // probes shed ops to timeouts, one that merely misses the SLO.
        let spec = SloScenario {
            name: "toy",
            slo: SloPredicate::p99_under_ms(20.0),
            steps: 4,
            live: false,
        };
        let cells = [SloCell::new("toy", "C3", 1), SloCell::new("toy", "DS", 1)];
        let report = SloSweep::new(spec.slo).run(
            &cells,
            1,
            |_| Ok(RateWindow::new(100.0, 2_000.0, 4)),
            |cell, _rate| {
                Ok(ProbeMeasurement {
                    value_ms: 1_000.0, // over the SLO even at the floor
                    timed_out: cell.strategy == "C3",
                })
            },
        );
        for ran in report.ran() {
            assert!(ran.outcome.fails_at_bracket_floor());
        }
        let json = slo_json(&[(spec, report)]);
        assert!(
            json.contains("\"floor_reason\": \"timeout\""),
            "timeout-driven floor failure must be named: {json}"
        );
        assert!(
            json.contains("\"floor_reason\": \"slo-miss\""),
            "plain SLO miss at the floor must be named: {json}"
        );
        // Sustainable cells render the reason as null.
        let spec_ok = SloScenario {
            name: "toy-ok",
            slo: SloPredicate::p99_under_ms(20.0),
            steps: 4,
            live: false,
        };
        let ok = SloSweep::new(spec_ok.slo).run(
            &[SloCell::new("toy-ok", "C3", 1)],
            1,
            |_| Ok(RateWindow::new(100.0, 2_000.0, 4)),
            |_, rate| Ok(rate / 200.0),
        );
        let json_ok = slo_json(&[(spec_ok, ok)]);
        assert!(json_ok.contains("\"floor_reason\": null"), "{json_ok}");
    }
}
