//! Simulator-backed experiments: Figures 14 and 15, plus the design
//! ablations called out in `DESIGN.md`.

use c3_core::{C3Config, Nanos};
use c3_metrics::Table;
use c3_sim::{DemandSkew, SimConfig, Simulation, Strategy};

use crate::support::{across_seeds, banner, runs_from_env, Scale};

const INTERVALS_MS: [u64; 6] = [10, 50, 100, 200, 300, 500];

fn sim_cfg(
    strategy: Strategy,
    clients: usize,
    interval_ms: u64,
    utilization: f64,
    scale: Scale,
    seed: u64,
) -> SimConfig {
    SimConfig {
        total_requests: scale.sim_requests(),
        ..SimConfig::paper(
            strategy,
            clients,
            Nanos::from_millis(interval_ms),
            utilization,
        )
    }
    .tap_seed(seed)
}

trait TapSeed {
    fn tap_seed(self, seed: u64) -> Self;
}

impl TapSeed for SimConfig {
    fn tap_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

fn p99_of(cfg: SimConfig) -> f64 {
    Simulation::new(cfg).run().summary().metric_ms("p99")
}

/// Figure 14: 99th-percentile latency across fluctuation intervals, client
/// counts and utilizations for ORA / C3 / LOR / RR.
pub fn fig14(scale: Scale) {
    banner(
        "F14",
        "p99 vs service-time fluctuation interval (Figure 14)",
    );
    let runs = runs_from_env();
    for (util, util_label) in [
        (0.7, "high utilization (70%)"),
        (0.45, "low utilization (45%)"),
    ] {
        for clients in [150usize, 300] {
            let mut table = Table::new(vec![
                "interval ms",
                "ORA p99",
                "C3 p99",
                "LOR p99",
                "RR p99",
            ]);
            for interval in INTERVALS_MS {
                let mut row = vec![format!("{interval}")];
                for strategy in [
                    Strategy::oracle(),
                    Strategy::c3(),
                    Strategy::lor(),
                    Strategy::round_robin(),
                ] {
                    let set = across_seeds(runs, |seed| {
                        p99_of(sim_cfg(
                            strategy.clone(),
                            clients,
                            interval,
                            util,
                            scale,
                            seed,
                        ))
                    });
                    row.push(format!("{:.1}", set.mean()));
                }
                table.row(row);
            }
            println!("{util_label}, {clients} clients:\n{table}");
        }
    }
    println!(
        "Paper shapes: all schemes are alike at T=10 ms (feedback is stale\n\
         within one RTT); as T grows LOR degrades faster than C3, RR (rate\n\
         control without ranking) is worst, and C3 stays closest to ORA. At\n\
         low utilization C3's curve plateaus while LOR/RR keep worsening."
    );
}

/// Figure 15: heavy client demand skews (20% / 50% of clients generate 80%
/// of the requests).
pub fn fig15(scale: Scale) {
    banner("F15", "p99 under client demand skew (Figure 15)");
    let runs = runs_from_env();
    for skew_clients in [0.2, 0.5] {
        for clients in [150usize, 300] {
            let mut table = Table::new(vec![
                "interval ms",
                "ORA p99",
                "C3 p99",
                "LOR p99",
                "RR p99",
            ]);
            for interval in INTERVALS_MS {
                let mut row = vec![format!("{interval}")];
                for strategy in [
                    Strategy::oracle(),
                    Strategy::c3(),
                    Strategy::lor(),
                    Strategy::round_robin(),
                ] {
                    let set = across_seeds(runs, |seed| {
                        let mut cfg =
                            sim_cfg(strategy.clone(), clients, interval, 0.7, scale, seed);
                        cfg.demand_skew = Some(DemandSkew {
                            fraction_of_clients: skew_clients,
                            fraction_of_demand: 0.8,
                        });
                        p99_of(cfg)
                    });
                    row.push(format!("{:.1}", set.mean()));
                }
                table.row(row);
            }
            println!(
                "demand skew: {:.0}% of clients generate 80% of requests, {clients} clients:\n{table}",
                skew_clients * 100.0
            );
        }
    }
    println!("Paper shape: regardless of skew, C3 outperforms LOR and RR.");
}

/// Ablation A1: C3's components — full C3 vs no-rate-control vs
/// no-concurrency-compensation vs queue exponents b ∈ {1, 2, 3, 4}.
pub fn ablation_components(scale: Scale) {
    banner(
        "A1",
        "component ablation: ranking, rate control, concurrency compensation, exponent b",
    );
    let runs = runs_from_env();
    let mut table = Table::new(vec!["variant", "p99 ms (mean over seeds)"]);
    for strategy in [
        Strategy::c3(),
        Strategy::c3_no_rate_control(),
        Strategy::c3_no_concurrency_comp(),
        Strategy::c3_exponent(1),
        Strategy::c3_exponent(2),
        Strategy::c3_exponent(4),
        Strategy::lor(),
    ] {
        let set = across_seeds(runs, |seed| {
            p99_of(sim_cfg(strategy.clone(), 150, 200, 0.7, scale, seed))
        });
        table.row(vec![
            strategy.label().to_string(),
            format!("{:.1}", set.mean()),
        ]);
    }
    println!("{table}");
    println!(
        "Reading: b=3 (C3) should sit at or near the minimum; b=1 (linear\n\
         scoring) builds long queues at fast servers; disabling concurrency\n\
         compensation re-admits herding."
    );
}

/// Ablation A2: parameter sensitivity — the concurrency weight w and the
/// multiplicative decrease β.
pub fn ablation_params(scale: Scale) {
    banner("A2", "parameter sensitivity: w and β");
    let runs = runs_from_env();
    let mut table = Table::new(vec!["parameter", "value", "p99 ms"]);
    for w in [1.0, 10.0, 150.0, 1000.0] {
        let set = across_seeds(runs, |seed| {
            let mut cfg = sim_cfg(Strategy::c3(), 150, 200, 0.7, scale, seed);
            cfg.keep_c3_weight = true;
            cfg.c3.concurrency_weight = w;
            p99_of(cfg)
        });
        table.row(vec![
            "w (concurrency weight)".to_string(),
            format!("{w}"),
            format!("{:.1}", set.mean()),
        ]);
    }
    for beta in [0.1, 0.2, 0.5, 0.8] {
        let set = across_seeds(runs, |seed| {
            let mut cfg = sim_cfg(Strategy::c3(), 150, 200, 0.7, scale, seed);
            cfg.c3 = C3Config { beta, ..cfg.c3 };
            p99_of(cfg)
        });
        table.row(vec![
            "β (multiplicative decrease)".to_string(),
            format!("{beta}"),
            format!("{:.1}", set.mean()),
        ]);
    }
    println!("{table}");
    println!(
        "The paper sets w = #clients and β = 0.2 without a sensitivity\n\
         analysis (left as future work); this table is our addition."
    );
}
