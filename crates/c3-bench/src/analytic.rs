//! Analytic/toy experiments: Figures 1, 4 and 5 are derived directly from
//! the mechanism, not from cluster measurements.

use c3_core::{cubic_rate, queue_size_estimate, score, C3Config, Nanos, TrackerSnapshot};
use c3_metrics::Table;

use crate::support::banner;

/// Figure 1: how LOR mis-allocates a synchronized burst across two servers
/// with service times 4 ms and 10 ms, versus the ideal allocation that
/// compensates service time with queue length.
///
/// Three clients each receive a burst of four requests. LOR balances
/// *counts* (6 requests each), so the slow server drains its share in
/// 6 × 10 ms = 60 ms. The ideal allocation balances *completion times*:
/// 8 requests on the fast server (32 ms) and 4 on the slow one (40 ms →
/// the paper quotes max latency 32 ms for its slightly different split;
/// we print the whole frontier).
pub fn fig01() {
    banner(
        "F1",
        "LOR vs ideal allocation of a 12-request burst (Figure 1)",
    );
    let total = 12u64;
    let fast_ms = 4.0;
    let slow_ms = 10.0;

    let mut table = Table::new(vec![
        "allocation (fast/slow)",
        "fast drain (ms)",
        "slow drain (ms)",
        "max latency (ms)",
    ]);
    let mut best = (0u64, f64::INFINITY);
    for fast_count in 0..=total {
        let slow_count = total - fast_count;
        let fast_drain = fast_count as f64 * fast_ms;
        let slow_drain = slow_count as f64 * slow_ms;
        let max = fast_drain.max(slow_drain);
        if max < best.1 {
            best = (fast_count, max);
        }
        if fast_count == total / 2 || fast_count == best.0 || fast_count % 3 == 0 {
            table.row(vec![
                format!("{fast_count}/{slow_count}"),
                format!("{fast_drain:.0}"),
                format!("{slow_drain:.0}"),
                format!("{max:.0}"),
            ]);
        }
    }
    println!("{table}");
    let lor_max = (total / 2) as f64 * slow_ms;
    println!(
        "LOR (equal split 6/6): max latency {lor_max:.0} ms — the paper's 60 ms.\n\
         Ideal ({}/{}): max latency {:.0} ms — the paper's ~32 ms.",
        best.0,
        total - best.0,
        best.1
    );
    assert!(best.1 < lor_max, "ideal must beat LOR");
}

/// Figure 4: linear vs cubic scoring functions. Prints score curves for
/// μ⁻¹ ∈ {4 ms, 20 ms} and the queue-size estimates at which the two
/// servers score equally.
pub fn fig04() {
    banner("F4", "linear vs cubic scoring functions (Figure 4)");
    let snap = |q: f64, st: f64| TrackerSnapshot {
        outstanding: 0,
        queue_size: Some(q - 1.0), // q̂ = 1 + q̄
        service_time_ms: Some(st),
        response_time_ms: Some(st),
    };
    for (label, b) in [("linear  (q̂)¹/μ̄", 1u32), ("cubic   (q̂)³/μ̄", 3u32)] {
        let cfg = C3Config::default().with_queue_exponent(b);
        let mut table = Table::new(vec!["q̂", "score 1/μ=4ms", "score 1/μ=20ms"]);
        for q in [1.0, 5.0, 10.0, 20.0, 34.0, 50.0, 100.0] {
            table.row(vec![
                format!("{q:.0}"),
                format!("{:.0}", score(&cfg, &snap(q, 4.0))),
                format!("{:.0}", score(&cfg, &snap(q, 20.0))),
            ]);
        }
        println!("{label}:\n{table}");
        // Equal-score crossover: q̂_fast^b · 4 = 20^b · 20 for q̂_slow = 20.
        let crossover = 20.0 * 5.0f64.powf(1.0 / b as f64);
        println!(
            "equal score with slow server at q̂=20 requires fast q̂ ≈ {crossover:.1} \
             ({}×)\n",
            crossover / 20.0
        );
    }
    println!(
        "The cubic exponent shrinks the queue advantage the fast server is\n\
         allowed to accumulate (∛5 ≈ 1.7× instead of 5×), which is exactly\n\
         the herd-damping the paper argues for."
    );
}

/// Figure 5: the cubic rate-growth curve and its three operating regions.
pub fn fig05() {
    banner("F5", "cubic sending-rate growth curve (Figure 5)");
    let r0 = 100.0;
    let beta = 0.2;
    let saddle_ms = 100.0;
    let mut table = Table::new(vec!["ΔT (ms)", "rate (req/δ)", "region"]);
    for dt in (0..=200).step_by(10) {
        let rate = cubic_rate(r0, beta, saddle_ms, dt as f64);
        let region = if (dt as f64) < 0.5 * saddle_ms {
            "low-rate (steep recovery)"
        } else if (dt as f64) <= 1.5 * saddle_ms {
            "saddle (stable)"
        } else {
            "optimistic probing"
        };
        table.row(vec![
            format!("{dt}"),
            format!("{rate:.1}"),
            region.to_string(),
        ]);
    }
    println!("{table}");
    println!(
        "R₀ = {r0}: the curve starts at R₀(1−β) = {:.0}, flattens through R₀ \
         around ΔT = {saddle_ms:.0} ms, then probes beyond.",
        r0 * (1.0 - beta)
    );
}

/// Supplementary: the concurrency-compensation example from §3.1 — a
/// heavier client projects a larger queue on the same server.
pub fn concurrency_compensation_demo() {
    banner("§3.1", "concurrency compensation: q̂ = 1 + os·w + q̄");
    let cfg = C3Config::for_clients(100);
    let mut table = Table::new(vec!["outstanding", "q̂ (w=100)", "score (μ̄⁻¹=4ms)"]);
    for os in [0u32, 1, 2, 4] {
        let snap = TrackerSnapshot {
            outstanding: os,
            queue_size: Some(3.0),
            service_time_ms: Some(4.0),
            response_time_ms: Some(6.0),
        };
        table.row(vec![
            format!("{os}"),
            format!("{:.0}", queue_size_estimate(&cfg, &snap)),
            format!("{:.2e}", score(&cfg, &snap)),
        ]);
    }
    println!("{table}");
    let _ = Nanos::ZERO;
}
