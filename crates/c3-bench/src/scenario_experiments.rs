//! Scenario-library experiments: the full strategy × scenario matrix.
//!
//! Complements the per-figure reproductions: where those pin one workload
//! and vary a knob, this sweeps **every strategy in the registry against
//! every scenario in the `c3-scenarios` library** (multi-tenant fleets,
//! heterogeneous hardware tiers, partition/flux blackouts) in one shot,
//! fanning the independent runs out across worker threads.

use c3_metrics::Table;
use c3_scenarios::{scenario_registry, ScenarioError, ScenarioRegistry, ScenarioReport};

use crate::support::{banner, fan_out_threads, runs_from_env, Scale, SkipLog};

/// Worker threads for scenario sweeps: the machine's parallelism, capped
/// so CI runners are not oversubscribed. Results do not depend on this.
pub fn sweep_threads() -> usize {
    fan_out_threads()
}

/// The strategy × scenario matrix. Every name in the strategy registry is
/// swept against every scenario in the library; cells a frontend cannot
/// drive (the simulator-global `ORA` on cluster-backed scenarios) are
/// reported as unsupported rather than skipped silently.
pub fn scenario_matrix(scale: Scale) {
    banner("SC", "strategy × scenario sweep (c3-scenarios)");
    let scenarios = ScenarioRegistry::with_defaults();
    let scenario_names = scenarios.names();
    let strategies: Vec<c3_engine::Strategy> = scenario_registry()
        .names()
        .into_iter()
        .map(c3_engine::Strategy::named)
        .collect();
    let runs = runs_from_env();
    let seeds: Vec<u64> = (1..=runs).collect();
    let ops = scale.scenario_ops();
    let threads = sweep_threads();
    println!(
        "{} scenarios × {} strategies × {} seeds at {} ops/run, {} worker threads",
        scenario_names.len(),
        strategies.len(),
        seeds.len(),
        ops,
        threads,
    );

    let results = scenarios.sweep(&scenario_names, &strategies, &seeds, ops, threads);

    // Matrix order is scenario-major, then strategy, then seed. Cells a
    // frontend cannot drive are deduped into one notice per
    // (scenario, strategy, reason) instead of one per seeded run.
    let mut skips = SkipLog::new();
    let mut iter = results.into_iter();
    for scenario in &scenario_names {
        let mut table = Table::new(vec![
            "strategy",
            "median ms",
            "p99 ms",
            "p99.9 ms",
            "ops/s",
            "other channels (p99 ms)",
        ]);
        for strategy in &strategies {
            let cell_runs: Vec<Result<ScenarioReport, ScenarioError>> = (0..seeds.len())
                .map(|_| iter.next().expect("cell"))
                .collect();
            match summarize_cell(&cell_runs) {
                Some(row) => {
                    table.row(row);
                }
                None => {
                    for run in &cell_runs {
                        if let Err(e) = run {
                            skips.note(scenario, strategy.label(), &e.to_string());
                        }
                    }
                    table.row(vec![
                        strategy.label().to_string(),
                        "—".into(),
                        "—".into(),
                        "—".into(),
                        "—".into(),
                        "skipped".into(),
                    ]);
                }
            }
        }
        println!(
            "\nscenario {scenario} (seed-averaged over {} runs):\n{table}",
            seeds.len()
        );
    }
    skips.print_summary();
    println!(
        "Paper shape: C3 keeps the read tail ahead of DS and the static\n\
         Primary/Nearest baselines in every scenario — widest under\n\
         partition flux, where DS's frozen rankings keep routing into\n\
         dark nodes. Instantaneous-queue baselines (LOR, P2C) stay\n\
         competitive when stragglers are transient; the asserted\n\
         comparisons live in the claims tier (tests/claims.rs)."
    );
}

/// Multi-tenant fairness: who pays the tail for sharing the fleet?
///
/// For each strategy, runs the shared multi-tenant scenario plus one
/// isolation baseline per tenant (the tenant alone at its own arrival
/// rate) and reports each tenant's slowdown-vs-isolated p99 factor and
/// the Jain fairness index over those factors (1.0 = everyone pays the
/// same relative price; 1/n = one tenant absorbs all the interference).
pub fn multi_tenant_fairness(scale: Scale) {
    use c3_engine::Strategy;
    use c3_scenarios::{
        run_multi_tenant, run_multi_tenant_isolated, MultiTenantConfig, RunOptions,
    };

    banner(
        "SC-F",
        "multi-tenant fairness: slowdown vs isolated + Jain index",
    );
    let strategies = [
        Strategy::c3(),
        Strategy::dynamic_snitching(),
        Strategy::lor(),
    ];
    let ops = scale.scenario_ops();
    let registry = scenario_registry();
    let base = MultiTenantConfig {
        total_requests: ops,
        warmup_requests: ops / 20,
        ..MultiTenantConfig::default()
    };
    let tenant_names: Vec<String> = base.tenants.iter().map(|t| t.name.clone()).collect();
    let mut header = vec!["strategy".to_string()];
    header.extend(tenant_names.iter().map(|n| format!("{n} slowdown")));
    header.push("Jain index".to_string());
    let mut table = Table::new(header);

    // One fan-out cell per strategy (each cell runs shared + isolated
    // baselines serially; the strategies are independent).
    let rows = c3_engine::fan_out(strategies.len(), sweep_threads(), |i| {
        let cfg = MultiTenantConfig {
            strategy: strategies[i].clone(),
            ..base.clone()
        };
        let shared = run_multi_tenant(cfg.clone(), &registry, RunOptions::default()).report;
        let isolated = run_multi_tenant_isolated(&cfg, &registry);
        let slowdowns = shared.slowdown_vs_isolated(&isolated);
        let jain = shared.jain_fairness(&isolated);
        (slowdowns, jain)
    });
    for (strategy, (slowdowns, jain)) in strategies.iter().zip(rows) {
        let mut row = vec![strategy.label().to_string()];
        row.extend(slowdowns.iter().map(|(_, f)| format!("{f:.2}x")));
        row.push(format!("{jain:.3}"));
        table.row(row);
    }
    println!("{table}");
    println!(
        "Reading: factors near 1x mean sharing was nearly free for that\n\
         tenant; a high Jain index with low factors is the ideal. C3's\n\
         queue-aware ranking should spread the interference cost more\n\
         evenly than DS's interval-frozen scores."
    );
}

/// Live-client health: the multiplexed client's own diagnostics, per
/// live scenario, for the live strategy pair.
///
/// Two named series ride on every [`c3_live::LiveReport`] outside its
/// workload channels (so SLO anchors and completion counts stay pure):
///
/// - **inflight** — in-flight occupancy sampled at every issue. The
///   percentiles here are *counts*. A p99 pinned near the budget means
///   the budget (the client) was the binding constraint: the run was
///   client-bound and its throughput says nothing about the servers. A
///   p99 with headroom means issuing kept up and the fleet set the pace —
///   server-bound, the regime every live number should be measured in.
/// - **feedback-lag** — nanoseconds a reader thread spent folding one
///   completion into selector state; the per-update price of the
///   concurrency-safe selector (atomic folds for C3, one shard lock for
///   the baselines).
///
/// Cells run *open-loop* at a fixed offered rate: a closed loop keeps its
/// budget fully occupied by construction, which would make the occupancy
/// verdict trivially "client-bound" in every cell. Under a paced load the
/// verdict is diagnostic — occupancy rides up only when the fleet (or a
/// blackout) stops absorbing the offered rate.
pub fn live_client_health(_scale: Scale) {
    use c3_engine::Strategy;
    use c3_live::{hetero_fleet_config, partition_flux_config, run_live};
    use c3_scenarios::{RunTuning, ScenarioParams};

    banner(
        "SC-L",
        "live client health: in-flight occupancy + feedback lag",
    );
    let strategies = [Strategy::c3(), Strategy::dynamic_snitching()];
    for scenario in [c3_live::LIVE_HETERO_FLEET, c3_live::LIVE_PARTITION_FLUX] {
        let mut table = Table::new(vec![
            "strategy",
            "inflight p50/p99/max",
            "budget",
            "verdict",
            "fb-lag p50 µs",
            "fb-lag p99 µs",
            "updates/s",
        ]);
        for strategy in &strategies {
            // ~1/6 of the fleet's SSD plateau: heavy enough to queue on a
            // 3x tier or through a blackout, light enough that a healthy
            // client never exhausts its budget.
            let params = ScenarioParams::tuned(
                strategy.clone(),
                1,
                u64::MAX,
                RunTuning {
                    offered_rate: Some(6_000.0),
                    ..RunTuning::default()
                },
            );
            let cfg = match scenario {
                c3_live::LIVE_HETERO_FLEET => hetero_fleet_config(&params),
                _ => partition_flux_config(&params),
            }
            .expect("live strategies are supported");
            let budget = cfg.in_flight;
            let live = run_live(scenario, cfg);
            let inflight = &live.health[0];
            let lag = &live.health[1];
            // Client-bound when the occupancy tail sits at the budget
            // ceiling: issuers were blocked on permits, not on servers.
            let verdict = if inflight.summary.p99_ns as f64 >= 0.9 * budget as f64 {
                "client-bound"
            } else {
                "server-bound"
            };
            table.row(vec![
                strategy.label().to_string(),
                format!(
                    "{}/{}/{}",
                    inflight.summary.p50_ns, inflight.summary.p99_ns, inflight.summary.max_ns
                ),
                budget.to_string(),
                verdict.to_string(),
                format!("{:.1}", lag.summary.p50_ns as f64 / 1e3),
                format!("{:.1}", lag.summary.p99_ns as f64 / 1e3),
                format!("{:.0}", lag.throughput),
            ]);
        }
        println!("\nscenario {scenario}:\n{table}");
    }
    println!(
        "Reading: a healthy live cell is server-bound — occupancy p99 well\n\
         under the budget. client-bound cells measure the client, not the\n\
         strategy; raise `in_flight` (or add connections) before trusting\n\
         their latency numbers."
    );
}

/// Tail-latency attribution: where the p99+ bucket of each scenario spends
/// its time, per strategy, from the flight recorder.
///
/// Each cell re-runs the scenario with a [`c3_telemetry::Recorder`]
/// attached (recorded runs are fingerprint-identical to plain ones, so
/// these are the *same* runs the matrix reports) and decomposes every
/// tail-bucket request into wait-for-permit / queueing-at-replica /
/// service, plus two **selection regret** measures: score regret (chosen
/// replica vs best available under freshly recomputed scores) and
/// ground-truth queue regret (chosen pending depth minus the group's
/// shortest). Queue regret is the cross-strategy verdict — under a
/// blackout DS's fresh recompute reads the same starved reservoir its
/// frozen ranking does, so only the driver's ground truth can show the
/// Fig. 2 herd: DS's tail queue regret should sit well above C3's.
pub fn tail_attribution_matrix(scale: Scale) {
    use c3_engine::Strategy;
    use c3_scenarios::ScenarioParams;
    use c3_telemetry::{attribute_tail, Recorder};

    banner(
        "SC-T",
        "tail attribution: where the p99+ bucket spends its time",
    );
    let registry = ScenarioRegistry::with_defaults();
    let strategies = [
        Strategy::c3(),
        Strategy::dynamic_snitching(),
        Strategy::lor(),
    ];
    let ops = scale.scenario_ops();
    // Enough ring for a quick-scale run end to end; at full scale the ring
    // keeps the newest ~50k requests and attribution reports the join
    // count, so the drop is visible rather than silent.
    let capacity = ((ops as usize).saturating_mul(6)).min(1 << 18);
    let mut skips = SkipLog::new();
    for scenario in registry.names() {
        let mut table = Table::new(vec![
            "strategy",
            "joined",
            "tail n",
            "p99 ms",
            "wait ms",
            "queue ms",
            "service ms",
            "tail regret",
            "body regret",
            "queue regret",
        ]);
        for strategy in &strategies {
            let params = ScenarioParams::sized(strategy.clone(), 1, ops);
            let (_, rec) = match registry.run_recorded(scenario, &params, Recorder::new(capacity)) {
                Ok(out) => out,
                Err(e) => {
                    skips.note(scenario, strategy.label(), &e.to_string());
                    continue;
                }
            };
            let attr = attribute_tail(rec.events(), scenario, strategy.label(), 0.99);
            let fmt_rel = |v: f64| {
                if v.is_finite() {
                    format!("{v:.3}")
                } else {
                    "-".into()
                }
            };
            table.row(vec![
                strategy.label().to_string(),
                attr.joined.to_string(),
                attr.tail.len().to_string(),
                format!("{:.2}", attr.threshold_ns as f64 / 1e6),
                format!("{:.2}", attr.mean_wait_ns / 1e6),
                format!("{:.2}", attr.mean_queueing_ns / 1e6),
                format!("{:.2}", attr.mean_service_ns / 1e6),
                fmt_rel(attr.mean_regret_rel),
                fmt_rel(attr.body_mean_regret_rel),
                fmt_rel(attr.mean_queue_regret),
            ]);
        }
        println!("\nscenario {scenario} (p99+ bucket, seed 1, {ops} ops):\n{table}");
    }
    skips.print_summary();
    println!(
        "Reading: `tail/body regret` compare choices against the best\n\
         freshly-recomputed score (0 = picked the best); `queue regret` is\n\
         ground truth — chosen replica's pending depth minus the group's\n\
         shortest at decision time. Queue regret is the cross-strategy\n\
         verdict: a dark node starves DS's reservoirs, so DS's *fresh*\n\
         scores are as blind as its frozen ones, while the driver's queue\n\
         depths are not. DS's tail queue regret sitting above C3's is\n\
         Fig. 2's stale-ranking herd, attributed per request.\n\
         `trace_explain` prints the worst offenders row by row."
    );
}

/// Average a strategy's seed runs into one table row, or `None` when the
/// frontend does not support the strategy.
fn summarize_cell(runs: &[Result<ScenarioReport, ScenarioError>]) -> Option<Vec<String>> {
    let reports: Vec<&ScenarioReport> = runs.iter().filter_map(|r| r.as_ref().ok()).collect();
    if reports.is_empty() {
        return None;
    }
    let n = reports.len() as f64;
    let avg = |f: &dyn Fn(&ScenarioReport) -> f64| reports.iter().map(|r| f(r)).sum::<f64>() / n;
    let others: Vec<String> = reports[0]
        .channels
        .iter()
        .skip(1)
        .map(|c| {
            let p99 = reports
                .iter()
                .map(|r| {
                    r.channel(&c.name)
                        .expect("channel")
                        .summary
                        .metric_ms("p99")
                })
                .sum::<f64>()
                / n;
            format!("{}:{:.2}", c.name, p99)
        })
        .collect();
    Some(vec![
        reports[0].strategy.clone(),
        format!("{:.2}", avg(&|r| r.headline().summary.metric_ms("median"))),
        format!("{:.2}", avg(&|r| r.headline().summary.metric_ms("p99"))),
        format!("{:.2}", avg(&|r| r.headline().summary.metric_ms("p999"))),
        format!("{:.0}", avg(&|r| r.headline().throughput)),
        if others.is_empty() {
            "-".into()
        } else {
            others.join(" ")
        },
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use c3_engine::Strategy;
    use c3_scenarios::MULTI_TENANT;

    #[test]
    fn summarize_averages_over_seeds() {
        let reg = ScenarioRegistry::with_defaults();
        let runs = reg.sweep(&[MULTI_TENANT], &[Strategy::lor()], &[1, 2], 3_000, 2);
        let row = summarize_cell(&runs).expect("LOR runs everywhere");
        assert_eq!(row[0], "LOR");
        assert!(row[5].contains("analytics:"));
    }

    #[test]
    fn unsupported_cells_collapse_to_none() {
        let reg = ScenarioRegistry::with_defaults();
        let runs = reg.sweep(&["hetero-fleet"], &[Strategy::oracle()], &[1], 3_000, 1);
        assert!(summarize_cell(&runs).is_none());
    }

    #[test]
    fn sweep_threads_is_positive() {
        assert!(sweep_threads() >= 1);
    }
}
