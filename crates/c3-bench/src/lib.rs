//! # c3-bench — the reproduction harness
//!
//! One experiment function per figure/table of the paper (see the
//! per-experiment index in `DESIGN.md`), each exposed as a binary under
//! `src/bin/`, plus Criterion micro-benchmarks under `benches/`.
//!
//! All experiments honour `C3_SCALE` (`quick`/`full`) and `C3_RUNS`
//! (repetitions per configuration); `run_all` executes the full suite and
//! is what `EXPERIMENTS.md` is produced from. The `slo_sweep` bin runs
//! the throughput-at-SLO tier (`slo_experiments`) and writes
//! `BENCH_slo.json`; `bench_engine` runs the perf suite and writes
//! `BENCH_engine.json`.

pub mod analytic;
pub mod cluster_experiments;
pub mod scenario_experiments;
pub mod sim_experiments;
pub mod slo_experiments;
pub mod support;
