//! Reproduces one artifact of the C3 paper; see DESIGN.md for the index.
use c3_bench::support::Scale;

fn main() {
    c3_bench::cluster_experiments::fig06_fig07(Scale::from_env());
}
