//! Sweeps every strategy in the registry against every scenario in the
//! `c3-scenarios` library, in parallel. Honours `C3_SCALE` (quick/full)
//! and `C3_RUNS` (seeds per cell).
use c3_bench::scenario_experiments;
use c3_bench::support::Scale;

fn main() {
    let scale = Scale::from_env();
    scenario_experiments::scenario_matrix(scale);
    scenario_experiments::tail_attribution_matrix(scale);
    scenario_experiments::multi_tenant_fairness(scale);
    scenario_experiments::live_client_health(scale);
}
