//! Layered engine benchmark: kernel churn, selector-only microbenches,
//! end-to-end §6 simulator throughput, and scenario-library ops/sec —
//! written to `BENCH_engine.json` so the perf trajectory across PRs has a
//! machine-readable record.
//!
//! # Methodology
//!
//! Every number is a **best-of-R** (minimum-time) estimate over R
//! interleaved repetitions: subjects take turns rep by rep, so slow
//! machine phases hit all subjects alike, and the minimum-time estimator
//! discards interference entirely — on the shared single-vCPU runners
//! this repo builds on, steal time inflates wall-clock by double-digit
//! percent in bursts, and a mean (or even a median over few reps) measures
//! the neighbours, not the code. Medians are reported alongside for
//! honesty about spread.
//!
//! # Modes
//!
//! * default — full suite, rewrites `BENCH_engine.json` (override the
//!   path with `BENCH_ENGINE_OUT`). Deltas against the previously
//!   committed file are embedded, so the JSON documents before → after
//!   for every PR that touches performance.
//! * `--smoke` — reduced-scale simulator rows plus the 4096-pending
//!   kernel-churn ratio, compared against the committed file; exits
//!   non-zero when any strategy (or the churn ratio) regresses more than
//!   15% (override with `C3_BENCH_TOLERANCE_PCT`). This is the CI
//!   perf-regression gate.
//! * `--kernel` — layer 1 (kernel churn) only, no JSON rewrite: the quick
//!   loop for kernel work.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::fmt::Write as _;
use std::io::Write as _;
use std::time::Instant;

use c3_core::{C3Config, Nanos, ReplicaSelector, ResponseInfo, Selection};
use c3_engine::{BuiltSelector, EventQueue, SelectorCtx, Strategy, StrategyRegistry};
use c3_scenarios::{ScenarioParams, ScenarioRegistry, PARTITION_FLUX};
use c3_sim::{SimConfig, Simulation};
use c3_telemetry::Recorder;

/// The seed repo's kernel, reproduced verbatim as the churn baseline: a
/// binary heap of `(time, seq)` keys over `Vec<Option<E>>` slots with a
/// separate free-slot vector.
struct LegacyEventQueue<E> {
    heap: BinaryHeap<Reverse<((Nanos, u64), usize)>>,
    slots: Vec<Option<E>>,
    free: Vec<usize>,
    seq: u64,
    now: Nanos,
    processed: u64,
}

impl<E> LegacyEventQueue<E> {
    fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            slots: Vec::new(),
            free: Vec::new(),
            seq: 0,
            now: Nanos::ZERO,
            processed: 0,
        }
    }

    fn schedule(&mut self, at: Nanos, event: E) {
        let slot = match self.free.pop() {
            Some(i) => {
                self.slots[i] = Some(event);
                i
            }
            None => {
                self.slots.push(Some(event));
                self.slots.len() - 1
            }
        };
        self.seq += 1;
        self.heap.push(Reverse(((at, self.seq), slot)));
    }

    fn pop(&mut self) -> Option<(Nanos, E)> {
        let Reverse(((time, _), slot)) = self.heap.pop()?;
        self.now = time;
        self.processed += 1;
        let event = self.slots[slot].take().expect("slot must be filled");
        self.free.push(slot);
        Some((time, event))
    }
}

/// Deterministic pseudo-random delays for the churn loop.
fn next_delay(state: &mut u64) -> u64 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    (*state >> 33) % 1_000_000 + 1
}

/// Kernel churn workload through the legacy kernel: keep `pending` timers
/// alive, pop one + push one per step, `steps` times. Returns events/sec.
fn bench_legacy(pending: usize, steps: u64) -> f64 {
    let mut q = LegacyEventQueue::new();
    let mut rng = 0x1234_5678_9abc_def0u64;
    for i in 0..pending {
        q.schedule(Nanos(next_delay(&mut rng)), i as u64);
    }
    let start = Instant::now();
    for _ in 0..steps {
        let (t, e) = q.pop().expect("pending events");
        q.schedule(Nanos(t.as_nanos() + next_delay(&mut rng)), e);
    }
    let secs = start.elapsed().as_secs_f64();
    std::hint::black_box(q.processed);
    steps as f64 / secs
}

/// Same churn workload through the engine's kernel (inline-payload path).
fn bench_engine_kernel(pending: usize, steps: u64) -> f64 {
    let mut q: EventQueue<u64> = EventQueue::new();
    let mut rng = 0x1234_5678_9abc_def0u64;
    for i in 0..pending {
        q.schedule(Nanos(next_delay(&mut rng)), i as u64);
    }
    let start = Instant::now();
    for _ in 0..steps {
        let (t, e) = q.pop().expect("pending events");
        q.schedule(Nanos(t.as_nanos() + next_delay(&mut rng)), e);
    }
    let secs = start.elapsed().as_secs_f64();
    std::hint::black_box(q.processed());
    steps as f64 / secs
}

/// Selector-only microbench: ns per select → on_send → on_response cycle
/// over a 3-replica group out of 20 servers, mimicking the simulators'
/// per-request selector traffic.
fn bench_selector(selector: &mut dyn ReplicaSelector, cycles: u64) -> f64 {
    let group = [3usize, 4, 5];
    let info = ResponseInfo {
        response_time: Nanos::from_millis(2),
        feedback: None,
    };
    let start = Instant::now();
    let mut picked = 0u64;
    for i in 0..cycles {
        let now = Nanos(i * 2_000);
        if let Selection::Server(s) = selector.select(&group, now) {
            selector.on_send(s, now);
            selector.on_response(s, &info, now);
            picked += s as u64;
        }
    }
    let secs = start.elapsed().as_secs_f64();
    std::hint::black_box(picked);
    secs * 1e9 / cycles as f64
}

/// End-to-end simulator throughput in kernel events/sec.
fn bench_simulator(strategy: Strategy, total_requests: u64) -> (f64, u64) {
    let cfg = SimConfig {
        servers: 20,
        clients: 40,
        generators: 40,
        total_requests,
        fluctuation_interval: Nanos::from_millis(100),
        strategy,
        seed: 9,
        ..SimConfig::default()
    };
    let sim = Simulation::new(cfg);
    let start = Instant::now();
    let res = sim.run();
    let secs = start.elapsed().as_secs_f64();
    (res.events_processed as f64 / secs, res.events_processed)
}

/// Full scenario-library run (C3 strategy): `(ops/sec, events/sec)`.
fn bench_scenario(reg: &ScenarioRegistry, name: &str, ops: u64) -> (f64, f64) {
    let params = ScenarioParams::sized(Strategy::c3(), 9, ops);
    let start = Instant::now();
    let report = reg.run(name, &params).expect("scenario cell supported");
    let secs = start.elapsed().as_secs_f64();
    (
        report.total_completions() as f64 / secs,
        report.events_processed as f64 / secs,
    )
}

/// Best (interference-free estimate) and median of a set of rate samples.
fn best_and_median(mut runs: Vec<f64>) -> (f64, f64) {
    runs.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
    let median = runs[runs.len() / 2];
    let best = *runs.last().expect("non-empty");
    (best, median)
}

/// Run `subjects` round-robin for `reps` rounds, collecting per-subject
/// samples; interleaving decorrelates slow machine phases from subjects.
fn interleaved<T>(
    subjects: &mut [T],
    reps: usize,
    mut run: impl FnMut(&mut T) -> f64,
) -> Vec<Vec<f64>> {
    let mut out: Vec<Vec<f64>> = subjects.iter().map(|_| Vec::with_capacity(reps)).collect();
    for _ in 0..reps {
        for (i, s) in subjects.iter_mut().enumerate() {
            out[i].push(run(s));
        }
    }
    out
}

/// Pull the number following `"<field>":` after `"<key>"` inside
/// `"<section>"` out of the committed JSON (good enough for the schema
/// this binary itself writes).
fn scrape_number(json: &str, section: &str, key: &str, field: &str) -> Option<f64> {
    let sec = json.find(&format!("\"{section}\""))?;
    let tail = &json[sec..];
    let k = tail.find(&format!("\"{key}\""))?;
    let tail = &tail[k..];
    let needle = format!("\"{field}\":");
    let f = tail.find(&needle)?;
    let tail = &tail[f + needle.len()..];
    let end = tail.find([',', '}']).unwrap_or(tail.len());
    tail[..end].trim().parse().ok()
}

/// Pull `"<key>": {"events_per_sec": <num>` out of the committed JSON.
fn scrape_rate(json: &str, section: &str, key: &str) -> Option<f64> {
    scrape_number(json, section, key, "events_per_sec")
}

/// Pull a field out of the committed `kernel_churn` row for `pending`
/// events (rows are an array keyed by an unquoted `"pending": N`).
fn scrape_churn(json: &str, pending: usize, field: &str) -> Option<f64> {
    let sec = json.find("\"kernel_churn\"")?;
    let tail = &json[sec..];
    let row = tail.find(&format!("\"pending\": {pending},"))?;
    let tail = &tail[row..];
    let needle = format!("\"{field}\":");
    let f = tail.find(&needle)?;
    let tail = &tail[f + needle.len()..];
    let end = tail.find([',', '}']).unwrap_or(tail.len());
    tail[..end].trim().parse().ok()
}

const SIM_STRATEGIES: [&str; 3] = ["C3", "LOR", "ORA"];
const FULL_REQUESTS: u64 = 60_000;
const SMOKE_REQUESTS: u64 = 12_000;
const SIM_REPS: usize = 13;

const KERNEL_STEPS: u64 = 2_000_000;
const KERNEL_REPS: usize = 5;

// The smoke gate's churn point: the historical regression figure (4096
// pending once sat at −6.5%) measured at a reduced step count so `--smoke`
// stays fast. The full run commits a baseline row at this exact scale —
// the engine/legacy ratio shifts with step count, so gating a 500k-step
// measurement against the 2M-step `kernel_churn` rows would bake in a
// systematic skew.
const GATE_PENDING: usize = 4096;
const GATE_STEPS: u64 = 500_000;

/// The smoke-scale churn measurement both the full run (to commit the
/// baseline) and `--smoke` (to gate against it) share: interleaved best
/// of 5 over both kernels at the gate's pending/steps point.
fn measure_gate_churn() -> (f64, f64) {
    let mut subjects = ["legacy", "engine"];
    let samples = interleaved(&mut subjects, 5, |which| match *which {
        "legacy" => bench_legacy(GATE_PENDING, GATE_STEPS),
        _ => bench_engine_kernel(GATE_PENDING, GATE_STEPS),
    });
    let legacy = best_and_median(samples[0].clone()).0;
    let engine = best_and_median(samples[1].clone()).0;
    (legacy, engine)
}
// Recorder-overhead gate: the flight recorder's on-path cost, measured as
// the events/sec ratio of the same scenario cell run with and without a
// recorder attached. Each rep runs off and on back-to-back, and the gate
// scores the *least-contended* pair (highest combined throughput): the
// recorder's cost is memory-system work, so a noisy neighbor thrashing the
// LLC amplifies the apparent ratio severalfold, and the quietest window is
// the one that measures the recorder rather than the neighbor. The budget
// is the telemetry layer's own contract (≤10% on-path cost), not the 15%
// cross-commit smoke tolerance that covers the recorder-off rows.
const RECORDER_GATE_OPS: u64 = 24_000;
const RECORDER_GATE_REPS: usize = 9;
const RECORDER_COST_BUDGET_PCT: f64 = 10.0;

/// Events/sec for the partition-flux cell with the recorder detached vs
/// attached, from the least-contended adjacent pair: `(off, on)`.
fn measure_recorder_overhead() -> (f64, f64) {
    let reg = ScenarioRegistry::with_defaults();
    let mut subjects = ["off", "on"];
    let samples = interleaved(&mut subjects, RECORDER_GATE_REPS, |which| {
        let params = ScenarioParams::sized(Strategy::c3(), 9, RECORDER_GATE_OPS);
        let start = Instant::now();
        let events = match *which {
            "off" => {
                reg.run(PARTITION_FLUX, &params)
                    .expect("scenario cell supported")
                    .events_processed
            }
            _ => {
                let (report, rec) = reg
                    .run_recorded(PARTITION_FLUX, &params, Recorder::with_default_capacity())
                    .expect("scenario cell supported");
                std::hint::black_box(rec.len());
                report.events_processed
            }
        };
        events as f64 / start.elapsed().as_secs_f64()
    });
    samples[0]
        .iter()
        .zip(samples[1].iter())
        .map(|(&off, &on)| (off, on))
        .max_by(|a, b| {
            let (qa, qb) = (a.0 + a.1, b.0 + b.1);
            qa.partial_cmp(&qb).expect("throughputs are finite")
        })
        .expect("at least one rep")
}

// 128 pending ≈ the live-event census of the §6 simulator runs; 4096 is
// the historical stress figure (the calendar queue used to lose 6.5%
// there); 65536 is the mega-fleet regime (100k+ simulated clients).
const KERNEL_CASES: [usize; 3] = [128, 4096, 65_536];

/// Layer 1: the pop-one+push-one churn matrix over both kernels.
/// Returns `(pending, legacy_best, engine_best, delta_pct)` rows.
fn measure_kernel_churn() -> Vec<(usize, f64, f64, f64)> {
    println!("kernel churn ({KERNEL_STEPS} steps, best of {KERNEL_REPS}):");
    let mut rows = Vec::new();
    for pending in KERNEL_CASES {
        let mut subjects = ["legacy", "engine"];
        let samples = interleaved(&mut subjects, KERNEL_REPS, |which| match *which {
            "legacy" => bench_legacy(pending, KERNEL_STEPS),
            _ => bench_engine_kernel(pending, KERNEL_STEPS),
        });
        let (legacy_best, _) = best_and_median(samples[0].clone());
        let (engine_best, _) = best_and_median(samples[1].clone());
        let delta = (engine_best / legacy_best - 1.0) * 100.0;
        println!(
            "  pending {pending:>5}: legacy {legacy_best:>12.0} ev/s | engine {engine_best:>12.0} ev/s | {delta:+.1}%"
        );
        rows.push((pending, legacy_best, engine_best, delta));
    }
    rows
}

fn measure_simulator(total_requests: u64, reps: usize) -> Vec<(String, f64, f64, u64)> {
    let mut subjects: Vec<(Strategy, u64)> = SIM_STRATEGIES
        .iter()
        .map(|s| (Strategy::named(*s), 0u64))
        .collect();
    let samples = interleaved(&mut subjects, reps, |(strategy, events)| {
        let (rate, ev) = bench_simulator(strategy.clone(), total_requests);
        *events = ev;
        rate
    });
    subjects
        .iter()
        .zip(samples)
        .map(|((strategy, events), runs)| {
            let (best, median) = best_and_median(runs);
            (strategy.name().to_string(), best, median, *events)
        })
        .collect()
}

fn run_smoke(baseline: &str) -> i32 {
    let tolerance_pct: f64 = std::env::var("C3_BENCH_TOLERANCE_PCT")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(15.0);
    println!("bench smoke: {SMOKE_REQUESTS} requests/strategy, best of {SIM_REPS}, tolerance {tolerance_pct}%");

    // Machine-speed canary: the committed baseline was measured on some
    // other (or other-phased) host. The legacy seed kernel is frozen code
    // — it never changes across PRs — so the ratio of its churn rate now
    // vs at commit time measures pure machine speed, and the committed
    // simulator baseline is rescaled by it before the gate applies. A
    // slow CI runner then doesn't fail the build; slow *code* still does.
    let canary_now = {
        let runs: Vec<f64> = (0..5).map(|_| bench_legacy(128, 500_000)).collect();
        best_and_median(runs).0
    };
    let scale = scrape_number(baseline, "smoke", "canary", "legacy_events_per_sec")
        .map(|committed| canary_now / committed);
    match scale {
        Some(s) => println!(
            "  machine-speed canary (legacy kernel churn): {canary_now:.0} ev/s, {s:.2}x the committed host"
        ),
        None => println!(
            "  machine-speed canary: no committed canary — comparing raw events/sec"
        ),
    }

    let mut failed = false;

    // Kernel-churn gate at the historical regression point: 4096 pending.
    // Both kernels are measured *now*, so the engine/legacy ratio is
    // machine-speed-free by construction; the gate compares it against the
    // committed ratio. This is the row that once sat at −6.5% — the gate
    // keeps that regression class from silently returning. Prefer the
    // smoke-scale baseline row (same step count as this measurement); fall
    // back to the 2M-step `kernel_churn` row for files predating it, where
    // the scale mismatch costs ~10% of the tolerance.
    {
        let (legacy, engine) = measure_gate_churn();
        let ratio = engine / legacy;
        let committed_ratio =
            scrape_number(baseline, "smoke", "churn_4096", "engine_events_per_sec")
                .zip(scrape_number(
                    baseline,
                    "smoke",
                    "churn_4096",
                    "legacy_events_per_sec",
                ))
                .or_else(|| {
                    scrape_churn(baseline, GATE_PENDING, "engine_events_per_sec").zip(scrape_churn(
                        baseline,
                        GATE_PENDING,
                        "legacy_events_per_sec",
                    ))
                })
                .map(|(e, l)| e / l);
        match committed_ratio {
            Some(committed) => {
                let delta_pct = (ratio / committed - 1.0) * 100.0;
                let ok = delta_pct >= -tolerance_pct;
                println!(
                    "  churn@{GATE_PENDING} engine/legacy ratio {ratio:.3}  committed {committed:.3}  delta {delta_pct:+.1}%  {}",
                    if ok { "ok" } else { "REGRESSION" }
                );
                failed |= !ok;
            }
            None => println!(
                "  churn@{GATE_PENDING} engine/legacy ratio {ratio:.3}  no committed kernel_churn row — skipped"
            ),
        }
    }

    // Flight-recorder on-path gate: recorder-on must stay within the
    // telemetry budget of recorder-off, both measured in this run.
    {
        let budget_pct: f64 = std::env::var("C3_RECORDER_TOLERANCE_PCT")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(RECORDER_COST_BUDGET_PCT);
        let (off, on) = measure_recorder_overhead();
        let cost_pct = (1.0 - on / off) * 100.0;
        let ok = cost_pct <= budget_pct;
        println!(
            "  recorder@partition-flux: off {off:>12.0} ev/s | on {on:>12.0} ev/s | on-path cost {cost_pct:+.1}% (budget {budget_pct}%)  {}",
            if ok { "ok" } else { "REGRESSION" }
        );
        failed |= !ok;
    }

    let rows = measure_simulator(SMOKE_REQUESTS, SIM_REPS);
    for (name, best, median, _) in rows {
        match scrape_rate(baseline, "smoke", &name) {
            Some(committed) => {
                let expected = committed * scale.unwrap_or(1.0);
                let delta_pct = (best / expected - 1.0) * 100.0;
                let ok = delta_pct >= -tolerance_pct;
                println!(
                    "  {name:<4} best {best:>12.0} ev/s (median {median:>12.0})  expected {expected:>12.0}  delta {delta_pct:+.1}%  {}",
                    if ok { "ok" } else { "REGRESSION" }
                );
                failed |= !ok;
            }
            None => println!(
                "  {name:<4} best {best:>12.0} ev/s (median {median:>12.0})  no committed smoke baseline — skipped"
            ),
        }
    }
    if failed {
        eprintln!("bench smoke FAILED: simulator events/sec or the 4096-pending churn ratio regressed more than {tolerance_pct}% (machine-speed-normalized)");
        1
    } else {
        println!("bench smoke ok");
        0
    }
}

fn main() {
    let out_path = std::env::var("BENCH_ENGINE_OUT").unwrap_or_else(|_| "BENCH_engine.json".into());
    // The committed file doubles as the regression baseline; read it
    // before overwriting.
    let committed = std::fs::read_to_string("BENCH_engine.json").unwrap_or_default();

    if std::env::args().any(|a| a == "--smoke") {
        std::process::exit(run_smoke(&committed));
    }
    if std::env::args().any(|a| a == "--kernel") {
        measure_kernel_churn();
        return;
    }

    // ---- layer 1: kernel churn -------------------------------------------
    let kernel_rows = measure_kernel_churn();

    // ---- layer 2: selector-only microbench -------------------------------
    const SELECTOR_CYCLES: u64 = 1_000_000;
    const SELECTOR_REPS: usize = 5;
    let registry = StrategyRegistry::with_defaults();
    let ctx = SelectorCtx {
        servers: 20,
        c3: C3Config::for_clients(40),
        seed: 7,
        now: Nanos::ZERO,
    };
    let mut selectors: Vec<(String, Box<dyn ReplicaSelector>)> = registry
        .names()
        .iter()
        .filter_map(|name| {
            match registry.build(&Strategy::named(*name), &ctx).ok()? {
                BuiltSelector::Selector(s) => Some((name.to_string(), s)),
                BuiltSelector::Oracle => None, // needs simulator-global state
            }
        })
        .collect();
    println!(
        "selector microbench ({SELECTOR_CYCLES} cycles, group of 3/20, best of {SELECTOR_REPS}):"
    );
    let samples = interleaved(&mut selectors, SELECTOR_REPS, |(_, s)| {
        // Negated: best_and_median picks the max, and for ns/op lower is
        // better.
        -bench_selector(s.as_mut(), SELECTOR_CYCLES)
    });
    let mut selector_rows = Vec::new();
    for ((name, _), runs) in selectors.iter().zip(samples) {
        let (best, _) = best_and_median(runs);
        let ns = -best;
        println!("  {name:<8} {ns:>7.1} ns/cycle");
        selector_rows.push((name.clone(), ns));
    }

    // ---- layer 3: end-to-end simulator -----------------------------------
    println!("§6 simulator ({FULL_REQUESTS} requests, 20 servers, best of {SIM_REPS}):");
    let sim_rows = measure_simulator(FULL_REQUESTS, SIM_REPS);
    let mut sim_json_rows = Vec::new();
    for (name, best, median, events) in &sim_rows {
        let baseline = scrape_rate(&committed, "simulator", name);
        let speedup = baseline.map(|b| *best / b);
        match speedup {
            Some(s) => println!(
                "  {name:<4} best {best:>12.0} ev/s (median {median:>12.0}, {events} events)  {s:.2}x vs committed"
            ),
            None => println!(
                "  {name:<4} best {best:>12.0} ev/s (median {median:>12.0}, {events} events)"
            ),
        }
        sim_json_rows.push((name.clone(), *best, *median, *events, baseline, speedup));
    }

    // Reduced-scale rows: the committed baseline the CI smoke gate
    // compares against (same scale as `--smoke` runs), plus the frozen
    // legacy-kernel canary the gate uses to normalize machine speed.
    println!("smoke baseline rows ({SMOKE_REQUESTS} requests):");
    let smoke_canary = {
        let runs: Vec<f64> = (0..5).map(|_| bench_legacy(128, 500_000)).collect();
        best_and_median(runs).0
    };
    println!("  machine-speed canary: {smoke_canary:.0} ev/s");
    let (gate_legacy, gate_engine) = measure_gate_churn();
    println!(
        "  churn@{GATE_PENDING} ({GATE_STEPS} steps): legacy {gate_legacy:.0} ev/s | engine {gate_engine:.0} ev/s | ratio {:.3}",
        gate_engine / gate_legacy
    );
    let smoke_rows = measure_simulator(SMOKE_REQUESTS, SIM_REPS);
    for (name, best, _, _) in &smoke_rows {
        println!("  {name:<4} best {best:>12.0} ev/s");
    }
    let (rec_off, rec_on) = measure_recorder_overhead();
    let rec_cost_pct = (1.0 - rec_on / rec_off) * 100.0;
    println!(
        "  recorder@partition-flux: off {rec_off:.0} ev/s | on {rec_on:.0} ev/s | on-path cost {rec_cost_pct:+.1}%"
    );

    // ---- layer 4: scenario library ---------------------------------------
    const SCENARIO_OPS: u64 = 20_000;
    const SCENARIO_REPS: usize = 3;
    let scenarios = ScenarioRegistry::with_defaults();
    let mut names = scenarios.names();
    println!("scenario library (C3, {SCENARIO_OPS} ops, best of {SCENARIO_REPS}):");
    let samples = interleaved(&mut names, SCENARIO_REPS, |name| {
        let (ops, _events) = bench_scenario(&scenarios, name, SCENARIO_OPS);
        ops
    });
    let mut scenario_rows = Vec::new();
    for (name, runs) in names.iter().zip(samples) {
        let (best, _) = best_and_median(runs);
        println!("  {name:<16} {best:>10.0} ops/sec");
        scenario_rows.push((name.to_string(), best));
    }

    // ---- write JSON ------------------------------------------------------
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"schema\": 2,\n");
    json.push_str(&format!(
        "  \"methodology\": {{\"estimator\": \"best-of-R interleaved (min-time)\", \"kernel_reps\": {KERNEL_REPS}, \"sim_reps\": {SIM_REPS}}},\n"
    ));
    json.push_str("  \"kernel_churn\": [\n");
    for (i, (pending, legacy, engine, delta)) in kernel_rows.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"pending\": {pending}, \"steps\": {KERNEL_STEPS}, \"legacy_events_per_sec\": {legacy:.0}, \"engine_events_per_sec\": {engine:.0}, \"delta_pct\": {delta:.2}}}{}",
            if i + 1 < kernel_rows.len() { "," } else { "" }
        );
    }
    json.push_str("  ],\n");
    json.push_str("  \"selector_ns_per_cycle\": {\n");
    for (i, (name, ns)) in selector_rows.iter().enumerate() {
        let _ = writeln!(
            json,
            "    \"{name}\": {ns:.1}{}",
            if i + 1 < selector_rows.len() { "," } else { "" }
        );
    }
    json.push_str("  },\n");
    json.push_str("  \"simulator\": {\n");
    for (i, (name, best, median, events, baseline, speedup)) in sim_json_rows.iter().enumerate() {
        let mut row = format!(
            "    \"{name}\": {{\"events_per_sec\": {best:.0}, \"median_events_per_sec\": {median:.0}, \"events\": {events}"
        );
        if let (Some(b), Some(s)) = (baseline, speedup) {
            let _ = write!(
                row,
                ", \"previous_events_per_sec\": {b:.0}, \"speedup\": {s:.2}"
            );
        }
        let _ = writeln!(
            json,
            "{row}}}{}",
            if i + 1 < sim_json_rows.len() { "," } else { "" }
        );
    }
    json.push_str("  },\n");
    json.push_str("  \"smoke\": {\n");
    let _ = writeln!(json, "    \"requests\": {SMOKE_REQUESTS},");
    let _ = writeln!(
        json,
        "    \"canary\": {{\"legacy_events_per_sec\": {smoke_canary:.0}}},"
    );
    let _ = writeln!(
        json,
        "    \"churn_4096\": {{\"steps\": {GATE_STEPS}, \"legacy_events_per_sec\": {gate_legacy:.0}, \"engine_events_per_sec\": {gate_engine:.0}}},"
    );
    for (i, (name, best, _, events)) in smoke_rows.iter().enumerate() {
        let _ = writeln!(
            json,
            "    \"{name}\": {{\"events_per_sec\": {best:.0}, \"events\": {events}}}{}",
            if i + 1 < smoke_rows.len() { "," } else { "" }
        );
    }
    json.push_str("  },\n");
    let _ = writeln!(
        json,
        "  \"recorder_overhead\": {{\"scenario\": \"partition-flux\", \"ops\": {RECORDER_GATE_OPS}, \"off_events_per_sec\": {rec_off:.0}, \"on_events_per_sec\": {rec_on:.0}, \"cost_pct\": {rec_cost_pct:.2}}},"
    );
    json.push_str("  \"scenario_ops_per_sec\": {\n");
    for (i, (name, ops)) in scenario_rows.iter().enumerate() {
        let _ = writeln!(
            json,
            "    \"{name}\": {ops:.0}{}",
            if i + 1 < scenario_rows.len() { "," } else { "" }
        );
    }
    json.push_str("  }\n}\n");

    let mut f = std::fs::File::create(&out_path).expect("create BENCH_engine.json");
    f.write_all(json.as_bytes())
        .expect("write BENCH_engine.json");
    println!("wrote {out_path}");
}
