//! Engine benchmark: events/sec through the discrete-event kernel and the
//! end-to-end §6 simulator, written to `BENCH_engine.json` so the perf
//! trajectory across PRs has a machine-readable record.
//!
//! The kernel comparison pits the pre-refactor design (per-event
//! `Option<E>` slots plus an auxiliary free vector, as `c3-sim`'s kernel
//! shipped before `c3-engine` existed) against the engine's slab kernel
//! with its intrusive free list and cancellable timers, on the same
//! workload: a hot loop holding a bounded number of pending timers, as the
//! simulators do.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::io::Write as _;
use std::time::Instant;

use c3_core::Nanos;
use c3_engine::EventQueue;
use c3_sim::{SimConfig, Simulation, Strategy};

/// The seed repo's kernel, reproduced verbatim as the baseline: a binary
/// heap of `(time, seq)` keys over `Vec<Option<E>>` slots with a separate
/// free-slot vector.
struct LegacyEventQueue<E> {
    heap: BinaryHeap<Reverse<((Nanos, u64), usize)>>,
    slots: Vec<Option<E>>,
    free: Vec<usize>,
    seq: u64,
    now: Nanos,
    processed: u64,
}

impl<E> LegacyEventQueue<E> {
    fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            slots: Vec::new(),
            free: Vec::new(),
            seq: 0,
            now: Nanos::ZERO,
            processed: 0,
        }
    }

    fn schedule(&mut self, at: Nanos, event: E) {
        let slot = match self.free.pop() {
            Some(i) => {
                self.slots[i] = Some(event);
                i
            }
            None => {
                self.slots.push(Some(event));
                self.slots.len() - 1
            }
        };
        self.seq += 1;
        self.heap.push(Reverse(((at, self.seq), slot)));
    }

    fn pop(&mut self) -> Option<(Nanos, E)> {
        let Reverse(((time, _), slot)) = self.heap.pop()?;
        self.now = time;
        self.processed += 1;
        let event = self.slots[slot].take().expect("slot must be filled");
        self.free.push(slot);
        Some((time, event))
    }
}

/// Deterministic pseudo-random delays for the churn loop.
fn next_delay(state: &mut u64) -> u64 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    (*state >> 33) % 1_000_000 + 1
}

/// Kernel churn workload: keep `pending` timers alive, pop one + push one
/// per step, `steps` times. Returns events/sec.
fn bench_legacy(pending: usize, steps: u64) -> f64 {
    let mut q = LegacyEventQueue::new();
    let mut rng = 0x1234_5678_9abc_def0u64;
    for i in 0..pending {
        q.schedule(Nanos(next_delay(&mut rng)), i as u64);
    }
    let start = Instant::now();
    for _ in 0..steps {
        let (t, e) = q.pop().expect("pending events");
        q.schedule(Nanos(t.as_nanos() + next_delay(&mut rng)), e);
    }
    let secs = start.elapsed().as_secs_f64();
    std::hint::black_box(q.processed);
    steps as f64 / secs
}

/// Same churn workload through the engine's slab kernel.
fn bench_engine_kernel(pending: usize, steps: u64) -> f64 {
    let mut q: EventQueue<u64> = EventQueue::new();
    let mut rng = 0x1234_5678_9abc_def0u64;
    for i in 0..pending {
        q.schedule(Nanos(next_delay(&mut rng)), i as u64);
    }
    let start = Instant::now();
    for _ in 0..steps {
        let (t, e) = q.pop().expect("pending events");
        q.schedule(Nanos(t.as_nanos() + next_delay(&mut rng)), e);
    }
    let secs = start.elapsed().as_secs_f64();
    std::hint::black_box(q.processed());
    steps as f64 / secs
}

/// End-to-end simulator throughput in kernel events/sec.
fn bench_simulator(strategy: Strategy) -> (f64, u64) {
    let cfg = SimConfig {
        servers: 20,
        clients: 40,
        generators: 40,
        total_requests: 60_000,
        fluctuation_interval: Nanos::from_millis(100),
        strategy,
        seed: 9,
        ..SimConfig::default()
    };
    let sim = Simulation::new(cfg);
    let start = Instant::now();
    let res = sim.run();
    let secs = start.elapsed().as_secs_f64();
    (res.events_processed as f64 / secs, res.events_processed)
}

fn median_of(mut runs: Vec<f64>) -> f64 {
    runs.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
    runs[runs.len() / 2]
}

fn main() {
    const PENDING: usize = 4_096;
    const STEPS: u64 = 2_000_000;
    const REPS: usize = 5;

    println!("engine benchmark: kernel churn ({PENDING} pending timers, {STEPS} steps) ×{REPS}");
    let legacy = median_of((0..REPS).map(|_| bench_legacy(PENDING, STEPS)).collect());
    let slab = median_of(
        (0..REPS)
            .map(|_| bench_engine_kernel(PENDING, STEPS))
            .collect(),
    );
    println!("  legacy Option-slot kernel: {legacy:>12.0} events/sec");
    println!("  c3-engine slab kernel:     {slab:>12.0} events/sec");
    println!("  delta: {:+.1}%", (slab / legacy - 1.0) * 100.0);

    println!("end-to-end §6 simulator (60k requests, 20 servers):");
    let mut sim_results = Vec::new();
    for strategy in [Strategy::c3(), Strategy::lor(), Strategy::oracle()] {
        let label = strategy.label().to_string();
        let (eps, events) = {
            let runs: Vec<(f64, u64)> = (0..3).map(|_| bench_simulator(strategy.clone())).collect();
            let eps = median_of(runs.iter().map(|r| r.0).collect());
            (eps, runs[0].1)
        };
        println!("  {label:<4} {eps:>12.0} events/sec ({events} events)");
        sim_results.push((label, eps, events));
    }

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(&format!(
        "  \"kernel_churn\": {{\"pending\": {PENDING}, \"steps\": {STEPS}, \
         \"legacy_events_per_sec\": {legacy:.0}, \"engine_events_per_sec\": {slab:.0}, \
         \"delta_pct\": {:.2}}},\n",
        (slab / legacy - 1.0) * 100.0
    ));
    json.push_str("  \"simulator\": {\n");
    for (i, (label, eps, events)) in sim_results.iter().enumerate() {
        json.push_str(&format!(
            "    \"{label}\": {{\"events_per_sec\": {eps:.0}, \"events\": {events}}}{}\n",
            if i + 1 < sim_results.len() { "," } else { "" }
        ));
    }
    json.push_str("  }\n}\n");

    let path = std::env::var("BENCH_ENGINE_OUT").unwrap_or_else(|_| "BENCH_engine.json".into());
    let mut f = std::fs::File::create(&path).expect("create BENCH_engine.json");
    f.write_all(json.as_bytes())
        .expect("write BENCH_engine.json");
    println!("wrote {path}");
}
