//! Reproduces one artifact of the C3 paper; see DESIGN.md for the index.
use c3_bench::support::Scale;

fn main() {
    c3_bench::sim_experiments::fig14(Scale::from_env());
}
