//! Reproduces one artifact of the C3 paper; see DESIGN.md for the index.
use c3_bench::support::Scale;

fn main() {
    c3_bench::sim_experiments::ablation_params(Scale::from_env());
}
