//! Runs the entire reproduction suite in DESIGN.md order. Honours
//! `C3_SCALE` (quick/full) and `C3_RUNS`; output is the source for
//! EXPERIMENTS.md.
use c3_bench::support::Scale;
use c3_bench::{
    analytic, cluster_experiments as cl, scenario_experiments as sc, sim_experiments as sim,
};

fn main() {
    let scale = Scale::from_env();
    println!("C3 reproduction suite — scale: {scale:?}");
    analytic::fig01();
    analytic::fig04();
    analytic::fig05();
    analytic::concurrency_compensation_demo();
    cl::fig02(scale);
    cl::table1(scale);
    cl::fig06_fig07(scale);
    cl::fig08_fig09(scale);
    cl::fig10(scale);
    cl::fig11(scale);
    cl::fig12(scale);
    cl::fig13(scale);
    cl::extra_skewed_records(scale);
    cl::extra_speculative_retry(scale);
    sim::fig14(scale);
    sim::fig15(scale);
    sim::ablation_components(scale);
    sim::ablation_params(scale);
    sc::scenario_matrix(scale);
    sc::tail_attribution_matrix(scale);
    sc::multi_tenant_fairness(scale);
    println!("\nSuite complete.");
}
