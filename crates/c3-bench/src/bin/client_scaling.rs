//! Client-scaling sweep for the multiplexed live client: closed-loop
//! throughput as a function of the in-flight budget, per strategy —
//! written to `BENCH_live.json` (override the path with `BENCH_LIVE_OUT`).
//!
//! The question this answers is the live backend's credibility question:
//! **who sets the pace, the client or the servers?** The old client held
//! one request per worker thread, so "live throughput" measured the
//! client's thread count. The multiplexed client holds `in_flight`
//! requests over per-replica writer/reader connection pairs; sweeping the
//! budget from 1 to past 1000 must show
//!
//! 1. throughput *scaling* with the budget while the fleet has idle
//!    executors (client-bound region),
//! 2. a *knee*, and then a plateau pinned at the fleet's service capacity
//!    (replicas × per-replica concurrency / mean service time), where
//!    raising the budget only deepens the server queues (server-bound
//!    region — latency grows, throughput does not).
//!
//! The occupancy health channel corroborates the verdict per cell: in the
//! client-bound region p99 occupancy sits at the budget ceiling; past the
//! knee the budget stops being the binding constraint on throughput.
//!
//! A second section sweeps **fleet shape**: the same workload against
//! multi-process `c3-live-node` fleets (one replica per OS process),
//! with per-process RSS/CPU peaks from the coordinator's procfs gauges
//! — the cross-process twin of the in-flight ladder, skipped gracefully
//! when the node binary is not built.
//!
//! Each cell is a real socket run with real sleeps, so cells run
//! serially (the `run_live` gate) and the whole sweep takes
//! `cells × run_for` wall time. `--quick` halves the budget ladder and
//! run length for CI smoke use.

use std::fmt::Write as _;
use std::time::Duration;

use c3_engine::Strategy;
use c3_live::{run_live, LiveConfig};
use c3_live_node::{node_bin, run_node};
use c3_telemetry::{node_cpu_gauge, node_rss_gauge};

/// One measured cell of the sweep.
struct Cell {
    strategy: String,
    in_flight: usize,
    throughput: f64,
    read_p99_ms: f64,
    occupancy_p50: u64,
    occupancy_p99: u64,
    occupancy_max: u64,
    feedback_lag_p50_ns: u64,
    feedback_lag_p99_ns: u64,
    feedback_lag_max_ns: u64,
}

fn cell_cfg(strategy: Strategy, in_flight: usize, run_for: Duration) -> LiveConfig {
    LiveConfig {
        strategy,
        in_flight,
        // Issuers never block on responses; a fixed handful is enough for
        // every budget, which is exactly the point of the sweep.
        threads: 8,
        run_for,
        warmup_ops: 200,
        seed: 1,
        ..LiveConfig::default()
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let out_path = std::env::var("BENCH_LIVE_OUT").unwrap_or_else(|_| "BENCH_live.json".into());
    let budgets: &[usize] = if quick {
        &[1, 16, 256, 1024]
    } else {
        &[1, 4, 16, 64, 256, 1024, 2048]
    };
    let run_for = Duration::from_millis(if quick { 500 } else { 1_200 });
    let strategies = [Strategy::c3(), Strategy::lor()];
    let fleet = LiveConfig::default();
    println!(
        "client scaling: closed loop, {} replicas x {} executors, SSD service times, {:?}/cell",
        fleet.replicas, fleet.concurrency, run_for
    );
    println!(
        "{:<9} {:>9} {:>12} {:>9} {:>17}",
        "strategy", "in-flight", "ops/s", "p99 ms", "occ p50/p99/max"
    );

    let mut cells: Vec<Cell> = Vec::new();
    for strategy in &strategies {
        for &budget in budgets {
            let live = run_live(
                "client-scaling",
                cell_cfg(strategy.clone(), budget, run_for),
            );
            let report = &live.report;
            let throughput: f64 = report.channels.iter().map(|c| c.throughput).sum();
            let read_p99_ms = report.p99_ms();
            let occ = &live.health[0].summary;
            let lag = &live.health[1].summary;
            println!(
                "{:<9} {:>9} {:>12.0} {:>9.2} {:>10}/{}/{}",
                strategy.label(),
                budget,
                throughput,
                read_p99_ms,
                occ.p50_ns,
                occ.p99_ns,
                occ.max_ns,
            );
            cells.push(Cell {
                strategy: strategy.label().to_string(),
                in_flight: budget,
                throughput,
                read_p99_ms,
                occupancy_p50: occ.p50_ns,
                occupancy_p99: occ.p99_ns,
                occupancy_max: occ.max_ns,
                feedback_lag_p50_ns: lag.p50_ns,
                feedback_lag_p99_ns: lag.p99_ns,
                feedback_lag_max_ns: lag.max_ns,
            });
        }
    }

    // Verdicts come from the throughput curve, not from occupancy: a
    // closed loop keeps its budget fully occupied in *every* regime (the
    // excess just queues on the servers), so "who is the bottleneck" is
    // decided by whether more budget still buys throughput. The knee per
    // strategy is the smallest budget whose throughput reaches 90% of
    // that strategy's plateau (its best cell); cells at/past the knee are
    // the server-bound plateau the acceptance criterion wants.
    let mut knees = Vec::new();
    let mut verdicts: Vec<&'static str> = Vec::with_capacity(cells.len());
    for strategy in &strategies {
        let own: Vec<&Cell> = cells
            .iter()
            .filter(|c| c.strategy == strategy.label())
            .collect();
        let plateau = own.iter().map(|c| c.throughput).fold(0.0, f64::max);
        let knee = own
            .iter()
            .find(|c| c.throughput >= 0.9 * plateau)
            .map(|c| c.in_flight)
            .unwrap_or(0);
        // At or past the knee the fleet sets the pace — including cells
        // where throughput *droops* slightly under the deep queues that
        // oversized budgets build.
        verdicts.extend(own.iter().map(|c| {
            if c.in_flight >= knee {
                "server-bound"
            } else {
                "client-bound"
            }
        }));
        println!(
            "{}: plateau {:.0} ops/s, knee at in-flight {} (budgets past the knee buy \
             latency, not throughput)",
            strategy.label(),
            plateau,
            knee
        );
        knees.push((strategy.label(), knee, plateau));
    }

    let mut json = String::new();
    json.push_str("{\n  \"schema\": 1,\n");
    let _ = writeln!(
        json,
        "  \"config\": {{\"replicas\": {}, \"concurrency\": {}, \"disk\": \"ssd\", \
         \"threads\": 8, \"run_for_ms\": {}, \"loop\": \"closed\"}},",
        fleet.replicas,
        fleet.concurrency,
        run_for.as_millis()
    );
    json.push_str("  \"cells\": [\n");
    for (i, (c, verdict)) in cells.iter().zip(&verdicts).enumerate() {
        let _ = write!(
            json,
            "    {{\"strategy\": \"{}\", \"in_flight\": {}, \"throughput\": {:.1}, \
             \"read_p99_ms\": {:.3}, \"occupancy_p50\": {}, \"occupancy_p99\": {}, \
             \"occupancy_max\": {}, \"feedback_lag_p50_ns\": {}, \
             \"feedback_lag_p99_ns\": {}, \"feedback_lag_max_ns\": {}, \
             \"verdict\": \"{}\"}}",
            c.strategy,
            c.in_flight,
            c.throughput,
            c.read_p99_ms,
            c.occupancy_p50,
            c.occupancy_p99,
            c.occupancy_max,
            c.feedback_lag_p50_ns,
            c.feedback_lag_p99_ns,
            c.feedback_lag_max_ns,
            verdict
        );
        json.push_str(if i + 1 == cells.len() { "\n" } else { ",\n" });
    }
    json.push_str("  ],\n  \"knees\": [\n");
    for (i, (name, knee, plateau)) in knees.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"strategy\": \"{name}\", \"knee_in_flight\": {knee}, \
             \"plateau_ops_per_sec\": {plateau:.1}}}"
        );
        json.push_str(if i + 1 == knees.len() { "\n" } else { ",\n" });
    }
    json.push_str("  ],\n");
    node_cells_json(&mut json, quick, run_for);
    json.push_str("}\n");
    std::fs::write(&out_path, json).expect("write BENCH_live.json");
    println!("wrote {out_path}");
}

/// The node-scaling cells: the same closed-loop workload against fleets
/// of `c3-live-node` *processes* — one replica per process, per-process
/// RSS/CPU from procfs. Skipped (with an empty-but-present JSON section)
/// when the node binary is not built, so the sweep still runs from a
/// bare `cargo run --bin client_scaling`.
fn node_cells_json(json: &mut String, quick: bool, run_for: Duration) {
    json.push_str("  \"node_cells\": [\n");
    let Some(bin) = node_bin() else {
        println!(
            "node scaling: skipped (c3-live-node binary not built; cargo build --release first)"
        );
        json.push_str("  ]\n");
        return;
    };
    let fleets: &[usize] = if quick { &[3] } else { &[3, 6] };
    println!("node scaling: closed loop, one process per replica, in-flight 256, {run_for:?}/cell");
    for (i, &nodes) in fleets.iter().enumerate() {
        let cfg = LiveConfig {
            replicas: nodes,
            in_flight: 256,
            threads: 8,
            run_for,
            warmup_ops: 200,
            seed: 1,
            ..LiveConfig::default()
        };
        let live = run_node("node-scaling", cfg, &bin);
        let report = &live.report;
        let throughput: f64 = report.channels.iter().map(|c| c.throughput).sum();
        let read_p99_ms = report.p99_ms();
        let _ = write!(
            json,
            "    {{\"strategy\": \"C3\", \"nodes\": {nodes}, \"throughput\": {throughput:.1}, \
             \"read_p99_ms\": {read_p99_ms:.3}, \"processes\": ["
        );
        let mut procs = Vec::new();
        for replica in 0..nodes {
            let peak = |name: &str| {
                live.recorder
                    .gauge_series(name)
                    .map(|g| g.values.iter().map(|(_, v)| *v).max().unwrap_or(0))
                    .unwrap_or(0)
            };
            let rss_kb = peak(&node_rss_gauge(replica));
            let cpu_ms = peak(&node_cpu_gauge(replica));
            procs.push(format!(
                "{{\"replica\": {replica}, \"rss_kb_peak\": {rss_kb}, \"cpu_ms\": {cpu_ms}}}"
            ));
        }
        let _ = write!(json, "{}]}}", procs.join(", "));
        json.push_str(if i + 1 == fleets.len() { "\n" } else { ",\n" });
        println!(
            "nodes={nodes}: {throughput:.0} ops/s, p99 {read_p99_ms:.2} ms, per-process peaks: {}",
            procs.join(" ")
        );
    }
    json.push_str("  ]\n");
}
