//! Tail forensics from the flight recorder: re-run a scenario with a
//! [`c3_telemetry::Recorder`] attached, join every request's lifecycle
//! (issue → select → send → feedback → complete), and print **the worst
//! requests and what the selector saw when it routed them** — the score it
//! ranked the chosen replica with, the freshly recomputed score it *would*
//! have seen, the best candidate it passed over, and the ground-truth
//! queue depths. The headline cells are `partition-flux` and
//! `hetero-fleet` under C3 vs DS: DS's interval-frozen rankings should
//! show tail selection regret well above C3's (the paper's Fig. 2
//! mechanism, attributed request by request), while C3's residual tail is
//! queueing and service it could not dodge.
//!
//! Two regret columns, on purpose. Score regret (`regret`) compares the
//! choice against the best *freshly recomputed* score — but under a
//! blackout DS's fresh recompute reads the same starved latency reservoir
//! its frozen ranking does (a dark node completes nothing, so no new
//! samples arrive), so DS scores its own blindness as near-zero regret;
//! and C3's nonzero score regret is largely its rate limiter deliberately
//! refusing the greedy best. The cross-strategy verdict therefore rests on
//! **queue regret**: chosen replica's ground-truth pending depth minus the
//! shortest in the group at decision time — units every strategy shares
//! and no strategy can grade for itself.
//!
//! Recorded runs are fingerprint-identical to plain runs (pinned by the
//! goldens), so these traces explain exactly the numbers the sweep tables
//! report.
//!
//! Output: per-cell tables on stdout plus `TRACE_explain.jsonl` (override
//! the path with `TRACE_EXPLAIN_OUT`) — one `tail_attribution` meta record
//! and one `tail_request` record per tail-bucket request, worst first,
//! ready for `jq`. `--quick` shrinks the runs for CI smoke use.

use c3_engine::Strategy;
use c3_metrics::Table;
use c3_scenarios::{
    ScenarioParams, ScenarioRegistry, CRASH_FLUX, FLAKY_NET, HETERO_FLEET, PARTITION_FLUX,
};
use c3_telemetry::{attribute_tail, Recorder, TailAttribution, NO_SERVER};

/// How many worst requests each cell prints (the JSONL carries the whole
/// tail bucket).
const WORST: usize = 20;

fn fmt_server(s: u32) -> String {
    if s == NO_SERVER {
        "-".into()
    } else {
        s.to_string()
    }
}

fn fmt_score(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.2}")
    } else {
        "-".into()
    }
}

/// One cell: recorded run → tail attribution → worst-requests table.
fn explain_cell(
    registry: &ScenarioRegistry,
    scenario: &str,
    strategy: &Strategy,
    ops: u64,
) -> TailAttribution {
    let params = ScenarioParams::sized(strategy.clone(), 1, ops);
    let capacity = ((ops as usize).saturating_mul(6)).min(1 << 18);
    let (_, rec) = registry
        .run_recorded(scenario, &params, Recorder::new(capacity))
        .expect("stock scenarios support C3 and DS");
    let attr = attribute_tail(rec.events(), scenario, strategy.label(), 0.99);
    println!(
        "\n{} / {}: {} requests joined, p99 {:.2} ms, tail bucket {} requests",
        scenario,
        strategy.label(),
        attr.joined,
        attr.threshold_ns as f64 / 1e6,
        attr.tail.len(),
    );
    let mut table = Table::new(vec![
        "request",
        "latency ms",
        "wait ms",
        "queue ms",
        "service ms",
        "chose",
        "saw",
        "fresh",
        "best (srv)",
        "regret",
        "q-regret",
        "lifecycle",
    ]);
    for row in attr.tail.iter().take(WORST) {
        // The hardened-lifecycle story of this request: deadline
        // expiries, retry re-dispatches, and how its hedge race ended.
        let mut lifecycle = String::new();
        if row.timeouts > 0 {
            lifecycle.push_str(&format!("to×{} ", row.timeouts));
        }
        if row.retries > 0 {
            lifecycle.push_str(&format!("re×{} ", row.retries));
        }
        if row.hedged {
            lifecycle.push_str(if row.hedge_rescued {
                "hedge:rescue"
            } else if row.hedge_won {
                "hedge:won"
            } else {
                "hedge:lost"
            });
        }
        table.row(vec![
            row.request.to_string(),
            format!("{:.2}", row.latency_ns as f64 / 1e6),
            format!("{:.2}", row.wait_for_permit_ns as f64 / 1e6),
            format!("{:.2}", row.queueing_ns as f64 / 1e6),
            format!("{:.2}", row.service_ns as f64 / 1e6),
            fmt_server(row.chosen),
            fmt_score(row.chosen_score),
            fmt_score(row.chosen_fresh),
            format!(
                "{} ({})",
                fmt_score(row.best_fresh),
                fmt_server(row.best_server)
            ),
            fmt_score(row.regret_rel),
            fmt_score(row.queue_regret),
            if lifecycle.is_empty() {
                "-".into()
            } else {
                lifecycle.trim_end().to_string()
            },
        ]);
    }
    println!("{table}");
    if attr.hedges > 0 || attr.total_timeouts > 0 {
        println!(
            "lifecycle ledger: {} timeouts, {} retries; {} hedges issued, {} won \
             ({} rescues), mean saved {} per measurable win, mean duplicate burn {}",
            attr.total_timeouts,
            attr.total_retries,
            attr.hedges,
            attr.hedge_wins,
            attr.hedge_rescues,
            fmt_ms(attr.mean_hedge_saved_ns),
            fmt_ms(attr.mean_hedge_waste_ns),
        );
    }
    attr
}

fn fmt_ms(ns: f64) -> String {
    if ns.is_finite() {
        format!("{:.2} ms", ns / 1e6)
    } else {
        "-".into()
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let out_path =
        std::env::var("TRACE_EXPLAIN_OUT").unwrap_or_else(|_| "TRACE_explain.jsonl".into());
    let ops: u64 = if quick { 8_000 } else { 60_000 };
    let registry = ScenarioRegistry::with_defaults();
    let strategies = [Strategy::c3(), Strategy::dynamic_snitching()];
    println!(
        "trace explain: the {WORST} worst requests per cell and what the selector saw \
         ({ops} ops, seed 1, p99+ bucket)"
    );
    println!(
        "columns: `saw` = score the selector ranked the chosen replica with; `fresh` = that \
         replica's freshly recomputed score; `regret` = (fresh − best)/|best|, 0 = picked the \
         best; `q-regret` = chosen queue depth − shortest queue."
    );

    let mut jsonl = String::new();
    for scenario in [PARTITION_FLUX, HETERO_FLEET] {
        let mut cells = Vec::new();
        for strategy in &strategies {
            let attr = explain_cell(&registry, scenario, strategy, ops);
            jsonl.push_str(&attr.to_jsonl());
            cells.push(attr);
        }
        let (c3, ds) = (&cells[0], &cells[1]);
        println!(
            "{scenario}: mean tail queue-regret C3 {:.1} vs DS {:.1} pending requests \
             (score regret C3 {:.3} / DS {:.3}) — {}",
            c3.mean_queue_regret,
            ds.mean_queue_regret,
            c3.mean_regret_rel,
            ds.mean_regret_rel,
            if ds.mean_queue_regret > c3.mean_queue_regret {
                "DS's frozen rankings pay for the tail in queue depth; C3's residual tail is queueing it could not dodge"
            } else {
                "UNEXPECTED: DS tail queue-regret did not exceed C3's in this run"
            }
        );
    }

    // The fault-injection cells: here the tail is bought back (or burned)
    // by the hardened lifecycle, so the story is the lifecycle ledger —
    // how much hedging saved vs the duplicate service it cost — rather
    // than selection regret alone.
    for scenario in [CRASH_FLUX, FLAKY_NET] {
        let mut cells = Vec::new();
        for strategy in &strategies {
            let attr = explain_cell(&registry, scenario, strategy, ops);
            jsonl.push_str(&attr.to_jsonl());
            cells.push(attr);
        }
        let (c3, ds) = (&cells[0], &cells[1]);
        println!(
            "{scenario}: hedge wins C3 {}/{} vs DS {}/{} — the worst requests above \
             carry their timeout/retry/hedge history in the `lifecycle` column",
            c3.hedge_wins, c3.hedges, ds.hedge_wins, ds.hedges,
        );
    }
    std::fs::write(&out_path, jsonl).expect("write TRACE_explain.jsonl");
    println!("\nwrote {out_path}");
}
