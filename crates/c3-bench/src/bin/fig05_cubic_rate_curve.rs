//! Reproduces one artifact of the C3 paper; see DESIGN.md for the index.
fn main() {
    c3_bench::analytic::fig05();
}
