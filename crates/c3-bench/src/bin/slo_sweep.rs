//! Throughput-at-SLO sweep: for every `(scenario, strategy, seed)` cell,
//! bisect for the maximum offered rate whose p99 still meets the
//! scenario's SLO, and write the fingerprinted results to
//! `BENCH_slo.json`.
//!
//! Honours `C3_SCALE` (quick/full — ops per probe), `C3_RUNS` (seeds per
//! cell), `C3_SLO_LIVE` (`0` skips the loopback-socket tier; default on)
//! and `BENCH_SLO_OUT` (output path, default `BENCH_slo.json`).
use c3_bench::slo_experiments;
use c3_bench::support::{runs_from_env, Scale};

fn main() {
    let scale = Scale::from_env();
    let include_live = std::env::var("C3_SLO_LIVE").as_deref() != Ok("0");
    let results = slo_experiments::throughput_at_slo(scale, runs_from_env(), include_live);
    let out = std::env::var("BENCH_SLO_OUT").unwrap_or_else(|_| "BENCH_slo.json".into());
    std::fs::write(&out, slo_experiments::slo_json(&results)).expect("write BENCH_slo.json");
    println!("\nwrote {out}");
}
