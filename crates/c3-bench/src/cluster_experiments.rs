//! Cluster-backed experiments: Figures 2, 6–13, Table 1 and the two §5
//! text experiments (skewed records, speculative retries).

use c3_cluster::{
    Cluster, ClusterConfig, DiskKind, PerturbationSpec, ScriptedSlowdown, Strategy, WorkloadPhase,
};
use c3_core::Nanos;
use c3_metrics::{moving_median, ns_to_ms, Ecdf, RunSet, Table};
use c3_workload::WorkloadMix;

use c3_engine::fan_out;

use crate::support::{banner, fan_out_threads, runs_from_env, Scale};

fn base_cfg(strategy: Strategy, mix: WorkloadMix, scale: Scale, seed: u64) -> ClusterConfig {
    ClusterConfig {
        total_ops: scale.cluster_ops(),
        warmup_ops: scale.cluster_ops() / 20,
        strategy,
        mix,
        seed,
        ..ClusterConfig::default()
    }
}

/// Figure 2: load oscillations under Dynamic Snitching — the per-100 ms
/// request counts at the most-utilized node swing between ~0 and the whole
/// cluster's attention.
pub fn fig02(scale: Scale) {
    banner("F2", "Dynamic Snitching load oscillations (Figure 2)");
    let mut table = Table::new(vec![
        "strategy",
        "busiest-node reads/100ms: p1",
        "median",
        "p99",
        "max",
        "swing (p99-p1)/median",
        "coeff. of variation",
    ]);
    for strategy in [Strategy::dynamic_snitching(), Strategy::c3()] {
        let res = Cluster::new(base_cfg(strategy, WorkloadMix::read_heavy(), scale, 1)).run();
        let busiest = res.busiest_node();
        let counts = res.server_load[busiest].counts().to_vec();
        let mean = counts.iter().sum::<u64>() as f64 / counts.len().max(1) as f64;
        let var = counts
            .iter()
            .map(|&c| (c as f64 - mean).powi(2))
            .sum::<f64>()
            / counts.len().max(1) as f64;
        let cv = var.sqrt() / mean.max(1e-9);
        let ecdf = Ecdf::from_samples(counts);
        table.row(vec![
            res.strategy.clone(),
            format!("{}", ecdf.quantile(0.01)),
            format!("{}", ecdf.quantile(0.5)),
            format!("{}", ecdf.quantile(0.99)),
            format!("{}", ecdf.max()),
            format!(
                "{:.2}",
                ecdf.quantile(0.99).saturating_sub(ecdf.quantile(0.01)) as f64
                    / ecdf.quantile(0.5).max(1) as f64
            ),
            format!("{cv:.2}"),
        ]);
    }
    println!("{table}");
    println!(
        "The paper's Figure 2 shows DS swinging between 0 and ~500 requests\n\
         per 100 ms — load bursts far wider than the node's typical level.\n\
         The reproduction targets are the swing relative to the median and\n\
         the coefficient of variation: both should be far higher for DS."
    );
}

/// Table 1 + §2.2: the replica-selection landscape measured under one
/// workload. Each row is a strategy emulating one of the popular stores.
pub fn table1(scale: Scale) {
    banner(
        "T1",
        "selection mechanisms in popular NoSQL stores, measured (Table 1)",
    );
    let mut table = Table::new(vec![
        "strategy (store)",
        "median ms",
        "p99 ms",
        "p99.9 ms",
        "reads/s",
    ]);
    let rows: [(Strategy, &str); 5] = [
        (Strategy::primary_only(), "Primary (OpenStack Swift)"),
        (Strategy::nearest_node(), "Nearest (MongoDB)"),
        (Strategy::lor(), "LOR (Riak behind Nginx/ELB)"),
        (Strategy::dynamic_snitching(), "DS (Cassandra)"),
        (Strategy::c3(), "C3 (this paper)"),
    ];
    for (strategy, label) in rows {
        let res = Cluster::new(base_cfg(strategy, WorkloadMix::read_heavy(), scale, 1)).run();
        let s = res.summary();
        table.row(vec![
            label.to_string(),
            format!("{:.2}", s.metric_ms("median")),
            format!("{:.2}", s.metric_ms("p99")),
            format!("{:.2}", s.metric_ms("p999")),
            format!("{:.0}", res.read_throughput()),
        ]);
    }
    println!("{table}");
}

/// Figures 6 and 7: latency profile and read throughput for C3 vs DS
/// across the three workload mixes, averaged over seeds with 95% CIs.
pub fn fig06_fig07(scale: Scale) {
    banner(
        "F6+F7",
        "latency profile and read throughput, C3 vs DS (Figures 6, 7)",
    );
    let runs = runs_from_env();
    let mut lat_table = Table::new(vec![
        "workload",
        "strategy",
        "mean ms",
        "median ms",
        "p95 ms",
        "p99 ms",
        "p99.9 ms",
        "p99.9−median ms",
    ]);
    let mut thr_table = Table::new(vec!["workload", "strategy", "reads/s (95% CI)"]);
    for mix in [
        WorkloadMix::read_heavy(),
        WorkloadMix::read_only(),
        WorkloadMix::update_heavy(),
    ] {
        let mut tail_gap = Vec::new();
        for strategy in [Strategy::c3(), Strategy::dynamic_snitching()] {
            let mut mean = RunSet::new();
            let mut median = RunSet::new();
            let mut p95 = RunSet::new();
            let mut p99 = RunSet::new();
            let mut p999 = RunSet::new();
            let mut thr = RunSet::new();
            // Seeds run in parallel (pure per-seed jobs, results in seed
            // order); the RunSets aggregate afterwards.
            let per_seed = fan_out(runs as usize, fan_out_threads(), |i| {
                let seed = i as u64 + 1;
                let res = Cluster::new(base_cfg(strategy.clone(), mix, scale, seed)).run();
                (res.summary(), res.read_throughput())
            });
            for (s, throughput) in per_seed {
                mean.push(s.mean_ms());
                median.push(s.metric_ms("median"));
                p95.push(s.metric_ms("p95"));
                p99.push(s.metric_ms("p99"));
                p999.push(s.metric_ms("p999"));
                thr.push(throughput);
            }
            let gap = p999.mean() - median.mean();
            tail_gap.push(gap);
            lat_table.row(vec![
                mix.label().to_string(),
                strategy.label().to_string(),
                format!("{:.2}", mean.mean()),
                format!("{:.2}", median.mean()),
                format!("{:.2}", p95.mean()),
                format!("{:.2}", p99.mean()),
                format!("{:.2}", p999.mean()),
                format!("{gap:.2}"),
            ]);
            thr_table.row(vec![
                mix.label().to_string(),
                strategy.label().to_string(),
                format!("{}", thr.ci95()),
            ]);
        }
        println!(
            "{}: tail-minus-median improvement C3 vs DS = {:.2}x",
            mix.label(),
            tail_gap[1] / tail_gap[0].max(1e-9)
        );
    }
    println!("\nFigure 6 (latency):\n{lat_table}");
    println!("Figure 7 (read throughput):\n{thr_table}");
    println!(
        "Paper shapes: C3 improves every percentile, cuts p99.9−median by\n\
         ~3x (read-heavy) / ~2.6x (others), and lifts throughput 26–43%."
    );
}

/// Figures 8 and 9: load conditioning — distribution and time series of the
/// most-utilized node's per-100 ms served reads.
pub fn fig08_fig09(scale: Scale) {
    banner(
        "F8+F9",
        "load distribution and time series on the busiest node (Figures 8, 9)",
    );
    let mut table = Table::new(vec![
        "strategy",
        "busiest reads/100ms median",
        "p99",
        "p99−median",
        "total served by busiest",
    ]);
    for strategy in [Strategy::c3(), Strategy::dynamic_snitching()] {
        let res = Cluster::new(base_cfg(strategy, WorkloadMix::read_heavy(), scale, 1)).run();
        let busiest = res.busiest_node();
        let w = &res.server_load[busiest];
        let ecdf = Ecdf::from_samples(w.counts().to_vec());
        table.row(vec![
            res.strategy.clone(),
            format!("{}", ecdf.quantile(0.5)),
            format!("{}", ecdf.quantile(0.99)),
            format!("{}", ecdf.quantile(0.99).saturating_sub(ecdf.quantile(0.5))),
            format!("{}", w.total()),
        ]);
        // Figure 9: a downsampled slice of the time series.
        let counts = w.counts();
        let n = counts.len().min(100);
        let series: Vec<String> = counts[..n]
            .chunks(10)
            .map(|c| format!("{}", c.iter().sum::<u64>() / c.len() as u64))
            .collect();
        println!(
            "{} busiest-node reads/100ms (1s averages over first {}s): {}",
            res.strategy,
            n / 10,
            series.join(" ")
        );
    }
    println!("{table}");
    println!(
        "Paper shape: despite higher total throughput, C3's busiest node\n\
         serves a *narrower* load band (lower p99−median) than DS's."
    );
}

/// Figure 10: degradation when the offered load rises from 120 to 210
/// generators (read-heavy).
pub fn fig10(scale: Scale) {
    banner(
        "F10",
        "performance at higher system utilization (Figure 10)",
    );
    let mut table = Table::new(vec![
        "strategy",
        "generators",
        "median ms",
        "p95 ms",
        "p99 ms",
        "p99.9 ms",
    ]);
    let mut degr: Vec<(String, f64, f64)> = Vec::new();
    for strategy in [Strategy::c3(), Strategy::dynamic_snitching()] {
        let mut p999s = Vec::new();
        for generators in [120usize, 210] {
            let mut cfg = base_cfg(strategy.clone(), WorkloadMix::read_heavy(), scale, 1);
            cfg.generators = generators;
            let res = Cluster::new(cfg).run();
            let s = res.summary();
            p999s.push(s.metric_ms("p999"));
            table.row(vec![
                res.strategy.clone(),
                format!("{generators}"),
                format!("{:.2}", s.metric_ms("median")),
                format!("{:.2}", s.metric_ms("p95")),
                format!("{:.2}", s.metric_ms("p99")),
                format!("{:.2}", s.metric_ms("p999")),
            ]);
        }
        degr.push((strategy.label().to_string(), p999s[0], p999s[1]));
    }
    println!("{table}");
    for (name, lo, hi) in degr {
        println!(
            "{name}: p99.9 degradation at +75% load = {:.0}%",
            (hi / lo - 1.0) * 100.0
        );
    }
    println!("Paper shape: C3 degrades roughly proportionally to load; DS worse.");
}

/// Figure 11: an update-heavy workload joins a running read-heavy workload;
/// the moving median of read latencies shows C3 degrading gracefully.
pub fn fig11(scale: Scale) {
    banner("F11", "adaptation to dynamic workload change (Figure 11)");
    // Scaled-down timeline: the paper adds 40 generators at t = 640 s of a
    // long run; we add them mid-run.
    let phase_at = Nanos::from_secs(match scale {
        Scale::Quick => 8,
        Scale::Full => 60,
    });
    for strategy in [Strategy::c3(), Strategy::dynamic_snitching()] {
        let mut cfg = base_cfg(strategy, WorkloadMix::read_heavy(), scale, 1);
        cfg.generators = 80;
        cfg.phase = Some(WorkloadPhase {
            at: phase_at,
            extra_generators: 40,
            mix: WorkloadMix::update_heavy(),
        });
        let res = Cluster::new(cfg).with_latency_trace().run();
        // 50-sample moving median, as the paper plots.
        let values: Vec<f64> = res
            .latency_trace
            .iter()
            .map(|&(_, l)| ns_to_ms(l.as_nanos()))
            .collect();
        let smoothed = moving_median(&values, 50);
        // Split at the phase-entry point.
        let split = res.latency_trace.partition_point(|&(t, _)| t < phase_at);
        let stats = |xs: &[f64]| -> (f64, f64) {
            if xs.is_empty() {
                return (0.0, 0.0);
            }
            let mean = xs.iter().sum::<f64>() / xs.len() as f64;
            let max = xs.iter().copied().fold(f64::MIN, f64::max);
            (mean, max)
        };
        let (before_mean, before_max) = stats(&smoothed[..split.min(smoothed.len())]);
        let (after_mean, after_max) = stats(&smoothed[split.min(smoothed.len())..]);
        println!(
            "{:3}: moving-median latency before joiners: mean {:.2} ms (max {:.2}); \
             after: mean {:.2} ms (max {:.2}); spike ratio {:.2}x",
            res.strategy,
            before_mean,
            before_max,
            after_mean,
            after_max,
            after_max / before_mean.max(1e-9),
        );
    }
    println!(
        "Paper shape: both systems degrade when the 40 update-heavy\n\
         generators join, but DS shows synchronized latency spikes (high\n\
         max/mean) while C3 degrades gracefully."
    );
}

/// Figure 12: the SSD deployment at 210 generators.
pub fn fig12(scale: Scale) {
    banner("F12", "SSD-backed cluster at 210 generators (Figure 12)");
    let mut table = Table::new(vec![
        "strategy",
        "median ms",
        "p95 ms",
        "p99 ms",
        "p99.9 ms",
        "p99.9−p99 ms",
        "reads/s",
    ]);
    for strategy in [Strategy::c3(), Strategy::dynamic_snitching()] {
        let mut cfg = base_cfg(strategy, WorkloadMix::read_heavy(), scale, 1);
        cfg.disk = DiskKind::Ssd;
        cfg.generators = 210;
        let res = Cluster::new(cfg).run();
        let s = res.summary();
        table.row(vec![
            res.strategy.clone(),
            format!("{:.2}", s.metric_ms("median")),
            format!("{:.2}", s.metric_ms("p95")),
            format!("{:.2}", s.metric_ms("p99")),
            format!("{:.2}", s.metric_ms("p999")),
            format!("{:.2}", s.metric_ms("p999") - s.metric_ms("p99")),
            format!("{:.0}", res.read_throughput()),
        ]);
    }
    println!("{table}");
    println!(
        "Paper shape: much lower absolute latencies than spinning disks;\n\
         C3 still cuts p99.9 ~3x and keeps p99.9−p99 tight (<5 ms vs ~20 ms)."
    );
}

/// Figure 13: sending-rate adaptation and backpressure on a 7-node cluster
/// while one node's performance is artificially degraded three times.
pub fn fig13(scale: Scale) {
    banner(
        "F13",
        "sending-rate adaptation of two coordinators to a degraded peer (Figure 13)",
    );
    let tracked_node = 2usize;
    let episodes = [
        (Nanos::from_secs(6), Nanos::from_secs(10)),
        (Nanos::from_secs(12), Nanos::from_millis(12_800)),
        (Nanos::from_secs(14), Nanos::from_millis(14_800)),
    ];
    let mut cfg = base_cfg(Strategy::c3(), WorkloadMix::read_heavy(), scale, 1);
    cfg.nodes = 7;
    cfg.generators = 70;
    cfg.perturbations = PerturbationSpec::none();
    cfg.scripted = episodes
        .iter()
        .map(|&(start, end)| ScriptedSlowdown {
            node: tracked_node,
            start,
            end,
            multiplier: 8.0,
        })
        .collect();
    let res = Cluster::new(cfg)
        .with_rate_probes(vec![(0, tracked_node), (1, tracked_node)])
        .run();

    for (i, trace) in res.rate_traces.iter().enumerate() {
        let vals = trace.values();
        let smooth = moving_median(&vals, 25);
        // Average the smoothed rate in each second for a readable series.
        let mut per_sec: Vec<(u64, Vec<f64>)> = Vec::new();
        for (&(t, _), &m) in trace.samples().iter().zip(smooth.iter()) {
            let sec = t / 1_000_000_000;
            match per_sec.last_mut() {
                Some((s, v)) if *s == sec => v.push(m),
                _ => per_sec.push((sec, vec![m])),
            }
        }
        let series: Vec<String> = per_sec
            .iter()
            .map(|(s, v)| format!("{}s:{:.1}", s, v.iter().sum::<f64>() / v.len() as f64))
            .collect();
        println!(
            "coordinator {i} srate toward node {tracked_node} (req/δ): {}",
            series.join(" ")
        );
    }
    for (i, events) in res.backpressure_events.iter().enumerate() {
        let times: Vec<String> = events
            .iter()
            .map(|t| format!("{:.1}s", t.as_secs_f64()))
            .collect();
        println!(
            "coordinator {i} backpressure events: [{}]",
            times.join(", ")
        );
    }
    println!(
        "Degradation windows: {:?}",
        episodes
            .iter()
            .map(|&(a, b)| format!("{:.1}-{:.1}s", a.as_secs_f64(), b.as_secs_f64()))
            .collect::<Vec<_>>()
    );
    println!(
        "Paper shape: both coordinators' rate estimates agree, drop\n\
         multiplicatively inside each degradation window and recover along\n\
         the cubic curve afterwards; backpressure fires near the windows."
    );
}

/// §5 text: Zipfian-distributed record sizes (≤2 KB) — C3 should keep its
/// advantage with variable-length records.
pub fn extra_skewed_records(scale: Scale) {
    banner("X1", "skewed record sizes (§5 text: ~2x p99 win)");
    let mut table = Table::new(vec!["strategy", "median ms", "p99 ms", "p99.9 ms"]);
    for strategy in [Strategy::c3(), Strategy::dynamic_snitching()] {
        let mut cfg = base_cfg(strategy, WorkloadMix::read_heavy(), scale, 1);
        cfg.skewed_records = true;
        let res = Cluster::new(cfg).run();
        let s = res.summary();
        table.row(vec![
            res.strategy.clone(),
            format!("{:.2}", s.metric_ms("median")),
            format!("{:.2}", s.metric_ms("p99")),
            format!("{:.2}", s.metric_ms("p999")),
        ]);
    }
    println!("{table}");
    println!("Paper numbers: C3 p99 ≈ 14 ms vs DS ≈ 30 ms (>2x).");
}

/// §5 text: speculative retries on top of DS *degrade* latency under high
/// utilization (up to 5x at p99 in the paper).
pub fn extra_speculative_retry(scale: Scale) {
    banner(
        "X2",
        "speculative retries atop DS degrade the tail (§5 text)",
    );
    let mut table = Table::new(vec![
        "configuration",
        "p95 ms",
        "p99 ms",
        "p99.9 ms",
        "spec retries",
    ]);
    for speculative in [false, true] {
        let mut cfg = base_cfg(
            Strategy::dynamic_snitching(),
            WorkloadMix::read_heavy(),
            scale,
            1,
        );
        cfg.speculative_retry = speculative;
        let res = Cluster::new(cfg).run();
        let s = res.summary();
        table.row(vec![
            if speculative {
                "DS + speculative retry (p99 trigger)"
            } else {
                "DS"
            }
            .to_string(),
            format!("{:.2}", s.metric_ms("p95")),
            format!("{:.2}", s.metric_ms("p99")),
            format!("{:.2}", s.metric_ms("p999")),
            format!("{}", res.speculative_retries),
        ]);
    }
    println!("{table}");
    println!(
        "Paper observation: with DS's already-variable response times the\n\
         coordinators speculate too much, adding disk load and *raising*\n\
         latency — reissues are not a silver bullet at high utilization."
    );
}
