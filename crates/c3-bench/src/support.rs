//! Shared harness support: experiment scale, repetition, aggregation.
//!
//! Every experiment binary honours two environment variables:
//!
//! - `C3_SCALE`: `quick` (default), `full` — `full` uses paper-scale
//!   operation counts (slower by ~20×),
//! - `C3_RUNS`: repetitions per configuration (default 3; the paper uses 5).

use std::collections::BTreeSet;

use c3_engine::fan_out;
use c3_metrics::RunSet;

/// Operation-count scale for the experiments.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// CI-friendly: hundreds of thousands of simulated operations.
    Quick,
    /// Paper-scale operation counts.
    Full,
}

impl Scale {
    /// Read the scale from `C3_SCALE` (default quick).
    pub fn from_env() -> Scale {
        match std::env::var("C3_SCALE").as_deref() {
            Ok("full") | Ok("FULL") => Scale::Full,
            _ => Scale::Quick,
        }
    }

    /// Cluster operations per run.
    pub fn cluster_ops(self) -> u64 {
        match self {
            Scale::Quick => 150_000,
            Scale::Full => 2_000_000,
        }
    }

    /// Simulator requests per run (the paper generates 600k).
    pub fn sim_requests(self) -> u64 {
        match self {
            Scale::Quick => 150_000,
            Scale::Full => 600_000,
        }
    }

    /// Operations per scenario-library run (the sweep covers the whole
    /// strategy × scenario matrix, so each cell stays smaller than a
    /// figure reproduction).
    pub fn scenario_ops(self) -> u64 {
        match self {
            Scale::Quick => 30_000,
            Scale::Full => 300_000,
        }
    }
}

/// Repetitions per configuration, from `C3_RUNS` (default 3).
pub fn runs_from_env() -> u64 {
    std::env::var("C3_RUNS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(3)
}

/// Worker threads for seed fan-outs: the machine's parallelism, capped so
/// CI runners are not oversubscribed. Results do not depend on this.
pub fn fan_out_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(8)
}

/// Run `f` once per seed (seeds `1..=runs`, fanned out over worker
/// threads via the engine's `fan_out`) and aggregate a scalar metric
/// across runs. Each per-seed run is a pure function of its seed, so the
/// aggregate is bit-identical to the old serial loop for any thread
/// count — `fan_out` returns results in seed order.
pub fn across_seeds(runs: u64, f: impl Fn(u64) -> f64 + Sync) -> RunSet {
    let mut set = RunSet::new();
    for value in fan_out(runs as usize, fan_out_threads(), |i| f(i as u64 + 1)) {
        set.push(value);
    }
    set
}

/// Print an experiment banner.
pub fn banner(id: &str, title: &str) {
    println!();
    println!("== {id}: {title} ==");
}

/// Deduplicating collector for skipped sweep cells.
///
/// Sweeps run each `(scenario, strategy)` cell once per seed, so a cell a
/// backend cannot drive (the `ORA` oracle on cluster-backed scenarios,
/// unknown strategies) used to surface one notice *per run*. Every sweep
/// bin (`scenario_sweep`, `slo_sweep`, `run_all`) now funnels its skips
/// through this log instead: identical `(scenario, strategy, reason)`
/// triples collapse to a single line, printed once at the end of the
/// sweep.
#[derive(Debug, Default)]
pub struct SkipLog {
    seen: BTreeSet<(String, String, String)>,
}

impl SkipLog {
    /// An empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Note one skipped cell; duplicates (across seeds or repeated
    /// sweeps) collapse.
    pub fn note(&mut self, scenario: &str, strategy: &str, reason: &str) {
        self.seen
            .insert((scenario.into(), strategy.into(), reason.into()));
    }

    /// Whether anything was skipped.
    pub fn is_empty(&self) -> bool {
        self.seen.is_empty()
    }

    /// Distinct skipped cells, in `(scenario, strategy)` order.
    pub fn entries(&self) -> impl Iterator<Item = (&str, &str, &str)> {
        self.seen
            .iter()
            .map(|(sc, st, r)| (sc.as_str(), st.as_str(), r.as_str()))
    }

    /// Print the deduped summary (nothing when the log is empty).
    pub fn print_summary(&self) {
        if self.is_empty() {
            return;
        }
        println!("\nskipped cells (deduped across seeds):");
        for (scenario, strategy, reason) in self.entries() {
            println!("  {scenario}/{strategy}: {reason}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_scale_is_quick() {
        // The test environment does not set C3_SCALE=full.
        if std::env::var("C3_SCALE").is_err() {
            assert_eq!(Scale::from_env(), Scale::Quick);
        }
    }

    #[test]
    fn scales_order_sensibly() {
        assert!(Scale::Full.cluster_ops() > Scale::Quick.cluster_ops());
        assert!(Scale::Full.sim_requests() > Scale::Quick.sim_requests());
    }

    #[test]
    fn across_seeds_aggregates() {
        let set = across_seeds(4, |seed| seed as f64);
        assert_eq!(set.len(), 4);
        assert_eq!(set.mean(), 2.5);
    }
}
