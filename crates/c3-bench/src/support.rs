//! Shared harness support: experiment scale, repetition, aggregation.
//!
//! Every experiment binary honours two environment variables:
//!
//! - `C3_SCALE`: `quick` (default), `full` — `full` uses paper-scale
//!   operation counts (slower by ~20×),
//! - `C3_RUNS`: repetitions per configuration (default 3; the paper uses 5).

use c3_engine::fan_out;
use c3_metrics::RunSet;

/// Operation-count scale for the experiments.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// CI-friendly: hundreds of thousands of simulated operations.
    Quick,
    /// Paper-scale operation counts.
    Full,
}

impl Scale {
    /// Read the scale from `C3_SCALE` (default quick).
    pub fn from_env() -> Scale {
        match std::env::var("C3_SCALE").as_deref() {
            Ok("full") | Ok("FULL") => Scale::Full,
            _ => Scale::Quick,
        }
    }

    /// Cluster operations per run.
    pub fn cluster_ops(self) -> u64 {
        match self {
            Scale::Quick => 150_000,
            Scale::Full => 2_000_000,
        }
    }

    /// Simulator requests per run (the paper generates 600k).
    pub fn sim_requests(self) -> u64 {
        match self {
            Scale::Quick => 150_000,
            Scale::Full => 600_000,
        }
    }

    /// Operations per scenario-library run (the sweep covers the whole
    /// strategy × scenario matrix, so each cell stays smaller than a
    /// figure reproduction).
    pub fn scenario_ops(self) -> u64 {
        match self {
            Scale::Quick => 30_000,
            Scale::Full => 300_000,
        }
    }
}

/// Repetitions per configuration, from `C3_RUNS` (default 3).
pub fn runs_from_env() -> u64 {
    std::env::var("C3_RUNS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(3)
}

/// Worker threads for seed fan-outs: the machine's parallelism, capped so
/// CI runners are not oversubscribed. Results do not depend on this.
pub fn fan_out_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(8)
}

/// Run `f` once per seed (seeds `1..=runs`, fanned out over worker
/// threads via the engine's `fan_out`) and aggregate a scalar metric
/// across runs. Each per-seed run is a pure function of its seed, so the
/// aggregate is bit-identical to the old serial loop for any thread
/// count — `fan_out` returns results in seed order.
pub fn across_seeds(runs: u64, f: impl Fn(u64) -> f64 + Sync) -> RunSet {
    let mut set = RunSet::new();
    for value in fan_out(runs as usize, fan_out_threads(), |i| f(i as u64 + 1)) {
        set.push(value);
    }
    set
}

/// Print an experiment banner.
pub fn banner(id: &str, title: &str) {
    println!();
    println!("== {id}: {title} ==");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_scale_is_quick() {
        // The test environment does not set C3_SCALE=full.
        if std::env::var("C3_SCALE").is_err() {
            assert_eq!(Scale::from_env(), Scale::Quick);
        }
    }

    #[test]
    fn scales_order_sensibly() {
        assert!(Scale::Full.cluster_ops() > Scale::Quick.cluster_ops());
        assert!(Scale::Full.sim_requests() > Scale::Quick.sim_requests());
    }

    #[test]
    fn across_seeds_aggregates() {
        let set = across_seeds(4, |seed| seed as f64);
        assert_eq!(set.len(), 4);
        assert_eq!(set.mean(), 2.5);
    }
}
