//! Umbrella crate for the C3 reproduction workspace.
//!
//! This crate re-exports every workspace crate under one roof so that the
//! examples under `examples/` and the integration tests under `tests/` can
//! use the entire system through a single dependency:
//!
//! - [`core`] — the C3 algorithm itself (replica ranking, cubic rate
//!   control, backpressure) plus the baseline client-local strategies.
//! - [`metrics`] — histograms, ECDFs, windowed time series and summaries.
//! - [`workload`] — YCSB-like workload generation (Zipfian keys, workload
//!   mixes, arrival processes, record sizes).
//! - [`sim`] — the paper's §6 discrete-event simulator.
//! - [`cluster`] — the Cassandra-like replicated data store substrate with
//!   Dynamic Snitching, used by the paper's §5 system evaluation.
//! - [`net`] — a real tokio/TCP implementation of the C3 client/server
//!   protocol.
//!
//! See `DESIGN.md` for the full system inventory and `EXPERIMENTS.md` for the
//! per-figure reproduction record.

pub use c3_cluster as cluster;
pub use c3_core as core;
pub use c3_metrics as metrics;
pub use c3_net as net;
pub use c3_sim as sim;
pub use c3_workload as workload;
