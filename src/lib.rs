//! Umbrella crate for the C3 reproduction workspace.
//!
//! This crate re-exports every workspace crate under one roof so that the
//! examples under `examples/` and the integration tests under `tests/` can
//! use the entire system through a single dependency:
//!
//! - [`core`] — the C3 algorithm itself (replica ranking, cubic rate
//!   control, backpressure) plus the baseline client-local strategies.
//! - [`engine`] — the shared deterministic event engine: slab-backed
//!   event queue with cancellable timers, the name → selector
//!   `StrategyRegistry`, and the `ScenarioRunner` (seeds, warm-up,
//!   uniform run metrics) both simulators run on.
//! - [`metrics`] — histograms, ECDFs, windowed time series and summaries.
//! - [`workload`] — YCSB-like workload generation (Zipfian keys, workload
//!   mixes, arrival processes, record sizes).
//! - [`sim`] — the paper's §6 discrete-event simulator.
//! - [`cluster`] — the Cassandra-like replicated data store substrate with
//!   Dynamic Snitching, used by the paper's §5 system evaluation.
//! - [`scenarios`] — the named workload scenario library (multi-tenant,
//!   heterogeneous fleets, partition/flux) with registry-driven parallel
//!   sweeps.
//! - [`telemetry`] — the flight recorder (ring-buffered lifecycle trace,
//!   score trace, gauge series) and tail-latency attribution shared by
//!   the simulators and the live backend.
//! - [`net`] — the C3 wire protocol (the tokio client/server sit behind
//!   the non-default `rt` feature).
//! - [`live`] — C3 over real loopback sockets with std-only threading: a
//!   replicated KV fleet, a threaded client driving the same selector
//!   state as the simulators, and live twins of the scenario library
//!   (`live-hetero-fleet`, `live-partition-flux`).
//! - [`live_node`] — the cross-process tier: one replica per OS process
//!   (`c3-live-node` binary), fleet spawning/supervision and address-file
//!   discovery, the hello config-digest handshake, and node scenarios
//!   where a crash is a real `SIGKILL`.
//!
//! See `README.md` for the crate map and quickstart.

pub use c3_cluster as cluster;
pub use c3_core as core;
pub use c3_engine as engine;
pub use c3_live as live;
pub use c3_live_node as live_node;
pub use c3_metrics as metrics;
pub use c3_net as net;
pub use c3_scenarios as scenarios;
pub use c3_sim as sim;
pub use c3_telemetry as telemetry;
pub use c3_workload as workload;
