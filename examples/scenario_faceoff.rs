//! The scenario library in one screen: C3 against its main rivals across
//! multi-tenant, heterogeneous-fleet and partition/flux workloads, with
//! the multi-tenant run broken down per tenant channel.
//!
//! ```sh
//! cargo run --release --example scenario_faceoff
//! ```

use c3::engine::Strategy;
use c3::metrics::Table;
use c3::scenarios::{ScenarioRegistry, MULTI_TENANT};

fn main() {
    let registry = ScenarioRegistry::with_defaults();
    let strategies = [
        Strategy::c3(),
        Strategy::dynamic_snitching(),
        Strategy::lor(),
        Strategy::power_of_two(),
        Strategy::random(),
    ];
    let seeds = [1u64, 2];
    let ops = 20_000;
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(8);

    let scenario_names = registry.names();
    let results = registry.sweep(&scenario_names, &strategies, &seeds, ops, threads);
    let mut iter = results.into_iter();

    for scenario in &scenario_names {
        let mut table = Table::new(vec!["strategy", "median ms", "p99 ms", "p99.9 ms", "ops/s"]);
        let mut tenant_rows: Vec<Vec<String>> = Vec::new();
        for strategy in &strategies {
            let runs: Vec<_> = (0..seeds.len())
                .map(|_| {
                    iter.next()
                        .expect("cell")
                        .expect("all strategies supported")
                })
                .collect();
            let n = runs.len() as f64;
            let avg =
                |f: fn(&c3::scenarios::ScenarioReport) -> f64| runs.iter().map(f).sum::<f64>() / n;
            table.row(vec![
                strategy.label().to_string(),
                format!("{:.2}", avg(|r| r.headline().summary.metric_ms("median"))),
                format!("{:.2}", avg(|r| r.headline().summary.metric_ms("p99"))),
                format!("{:.2}", avg(|r| r.headline().summary.metric_ms("p999"))),
                format!("{:.0}", avg(|r| r.headline().throughput)),
            ]);
            if *scenario == MULTI_TENANT {
                let mut row = vec![strategy.label().to_string()];
                for ch in &runs[0].channels {
                    let p99 = runs
                        .iter()
                        .map(|r| r.channel(&ch.name).unwrap().summary.metric_ms("p99"))
                        .sum::<f64>()
                        / n;
                    row.push(format!("{:.2}", p99));
                }
                tenant_rows.push(row);
            }
        }
        println!(
            "scenario {scenario} ({} seeds, {ops} ops):\n\n{table}",
            seeds.len()
        );
        if !tenant_rows.is_empty() {
            let mut t = Table::new(vec![
                "strategy",
                "interactive p99 ms",
                "analytics p99 ms",
                "bulk p99 ms",
            ]);
            for row in tenant_rows {
                t.row(row);
            }
            println!("per-tenant read tail (named channels):\n\n{t}");
        }
    }
    println!(
        "Expected shape: C3 beats DS and the static baselines in every\n\
         scenario; under partition-flux the frozen-ranking and static\n\
         strategies pay the largest tail penalty (instantaneous-queue\n\
         baselines like LOR stay competitive there), and in the\n\
         multi-tenant breakdown the bulk tenant's large values dominate\n\
         its own channel without dragging the interactive tenant's tail\n\
         with it."
    );
}
