//! Real sockets: three tokio key-value servers on localhost, one of them
//! deliberately slow, and a C3 client that learns to avoid it.
//!
//! ```sh
//! cargo run --release --example networked_kv
//! ```

use bytes::Bytes;
use c3::core::C3Config;
use c3::net::{C3Client, KvServer, ServiceProfile};

#[tokio::main(flavor = "multi_thread", worker_threads = 4)]
async fn main() {
    // Two healthy replicas and one straggler (12 ms mean service, 2-way
    // concurrency — think "node undergoing compaction").
    let healthy = ServiceProfile {
        mean_service: std::time::Duration::from_millis(1),
        concurrency: 8,
    };
    let straggler = ServiceProfile {
        mean_service: std::time::Duration::from_millis(12),
        concurrency: 2,
    };
    let s0 = KvServer::bind("127.0.0.1:0", healthy, 1)
        .await
        .expect("bind s0");
    let s1 = KvServer::bind("127.0.0.1:0", straggler, 2)
        .await
        .expect("bind s1");
    let s2 = KvServer::bind("127.0.0.1:0", healthy, 3)
        .await
        .expect("bind s2");
    let addrs = vec![s0.local_addr(), s1.local_addr(), s2.local_addr()];
    println!(
        "servers: fast={} SLOW={} fast={}",
        addrs[0], addrs[1], addrs[2]
    );

    let client = C3Client::connect(&addrs, C3Config::for_clients(1))
        .await
        .expect("connect");

    // Replicate 100 keys on all three servers (RF = 3).
    for k in 0..100u32 {
        let key = Bytes::from(format!("session:{k}"));
        let value = Bytes::from(vec![b'x'; 512]);
        for s in 0..3 {
            client
                .put_on(s, key.clone(), value.clone())
                .await
                .expect("put");
        }
    }

    // Read through C3: the straggler should end up with a small share.
    let mut served = [0u64; 3];
    let t0 = std::time::Instant::now();
    for i in 0..600u32 {
        let key = Bytes::from(format!("session:{}", i % 100));
        let (value, by) = client.get(&[0, 1, 2], key).await.expect("get");
        assert!(value.is_some());
        served[by] += 1;
    }
    let elapsed = t0.elapsed();

    println!("600 reads in {elapsed:.2?}");
    println!(
        "allocation: fast={} SLOW={} fast={}",
        served[0], served[1], served[2]
    );
    let (srate, score) = client.with_state(|st| (st.limiter(1).srate(), st.score_of(1)));
    println!("straggler's C3 view: score={score:.1}, srate={srate:.1} req/δ");
    println!(
        "\nThe cubic ranking pushes the straggler's score far above the\n\
         healthy replicas', so it serves only the occasional probe —\n\
         exactly the behaviour the paper's Figure 13 trace shows."
    );
}
