//! Live face-off: C3 vs Dynamic Snitching over real loopback sockets.
//!
//! Spawns the std-only KV fleet, blacks out one replica mid-run with the
//! injectable slowdown hook, and drives both strategies with the same
//! quasi-open-loop offered load — the socket twin of the partition-flux
//! scenario. Prints the read-latency table and C3's per-replica score
//! ranking inside the blackout window (the live half of the sim-vs-live
//! parity trace).
//!
//! ```sh
//! cargo run --release --example live_faceoff            # ~2 s of wall time
//! C3_LIVE_MS=5000 cargo run --release --example live_faceoff
//! ```

use std::time::Duration;

use c3::cluster::ScriptedSlowdown;
use c3::core::Nanos;
use c3::engine::Strategy;
use c3::live::{run_live, LiveConfig};
use c3::metrics::Table;

fn main() {
    let run_ms: u64 = std::env::var("C3_LIVE_MS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&ms| ms >= 600)
        .unwrap_or(1_000);
    // One replica goes dark for the middle ~40% of the run.
    let window = ScriptedSlowdown {
        node: 0,
        start: Nanos::from_millis(run_ms * 3 / 10),
        end: Nanos::from_millis(run_ms * 7 / 10),
        multiplier: 30.0,
    };

    println!(
        "live face-off on 127.0.0.1: 6 replicas, replica 0 dark {} → {}, {} ms/run",
        window.start, window.end, run_ms
    );
    let mut table = Table::new(vec![
        "strategy",
        "reads",
        "p50 ms",
        "p99 ms",
        "p99.9 ms",
        "reads/s",
        "backpressure",
    ]);
    let mut c3_scores = Vec::new();
    for strategy in [Strategy::c3(), Strategy::dynamic_snitching()] {
        let cfg = LiveConfig {
            replicas: 6,
            threads: 12,
            concurrency: 2,
            keys: 10_000,
            strategy: strategy.clone(),
            offered_rate: Some(5_000.0),
            run_for: Duration::from_millis(run_ms),
            warmup_ops: 200,
            scripted: vec![window],
            seed: 1,
            ..LiveConfig::default()
        };
        let live = run_live("live-faceoff", cfg);
        let read = live.report.headline();
        table.row(vec![
            strategy.label().to_string(),
            format!("{}", read.completions),
            format!("{:.2}", read.summary.metric_ms("median")),
            format!("{:.2}", read.summary.metric_ms("p99")),
            format!("{:.2}", read.summary.metric_ms("p999")),
            format!("{:.0}", read.throughput),
            format!("{}", live.backpressure_waits),
        ]);
        if strategy.name() == "C3" {
            c3_scores = live.score_trace;
        }
    }
    println!("{table}");

    // C3's view of the fleet inside the blackout: mean score per replica
    // (higher = worse; the dark replica should dominate).
    let mut sums = [0.0f64; 6];
    let mut count = 0;
    for (at, scores) in &c3_scores {
        if *at >= window.start + Nanos::from_millis(50) && *at < window.end {
            for (s, v) in sums.iter_mut().zip(scores) {
                *s += v;
            }
            count += 1;
        }
    }
    if count > 0 {
        let means: Vec<String> = sums
            .iter()
            .enumerate()
            .map(|(i, s)| {
                let mark = if i == window.node { "*" } else { "" };
                format!("n{i}{mark}:{:.0}", s / count as f64)
            })
            .collect();
        println!(
            "C3 mean scores inside the blackout ({} samples): {}",
            count,
            means.join("  ")
        );
        println!("(* = the scripted victim — it must carry the worst score)");
    }
    println!(
        "Expected shape: DS's interval-frozen rankings keep feeding the dark\n\
         replica's queue, C3's rate control collapses into the hole — same\n\
         ordering the partition-flux sim produces, now over real bytes."
    );
}
