//! Photo-tagging scenario: the paper's read-heavy workload (95% reads) on
//! the 15-node Cassandra-like cluster, C3 vs Dynamic Snitching.
//!
//! ```sh
//! cargo run --release --example photo_tagging
//! ```
//!
//! This is the workload behind Figures 6–9 of the paper: photo-tag reads
//! dominate, a trickle of writes keeps hot rows in the memtables, spinning
//! disks make stragglers expensive, and per-node GC/compaction episodes
//! provide the performance fluctuations C3 is designed to ride out.

use c3::cluster::{Cluster, ClusterConfig, Strategy};
use c3::metrics::Table;
use c3::workload::WorkloadMix;

fn main() {
    let mut table = Table::new(vec![
        "strategy",
        "median ms",
        "p95 ms",
        "p99 ms",
        "p99.9 ms",
        "reads/s",
        "backpressure",
    ]);
    for strategy in [Strategy::c3(), Strategy::dynamic_snitching()] {
        let cfg = ClusterConfig {
            total_ops: 120_000,
            warmup_ops: 10_000,
            ..ClusterConfig::paper(strategy, WorkloadMix::read_heavy())
        };
        let res = Cluster::new(cfg).run();
        let s = res.summary();
        table.row(vec![
            res.strategy.clone(),
            format!("{:.2}", s.metric_ms("median")),
            format!("{:.2}", s.metric_ms("p95")),
            format!("{:.2}", s.metric_ms("p99")),
            format!("{:.2}", s.metric_ms("p999")),
            format!("{:.0}", res.read_throughput()),
            format!("{}", res.backpressure_activations),
        ]);
    }
    println!("photo-tagging (read-heavy 95/5, 15 nodes, spinning disks):\n");
    println!("{table}");
    println!(
        "Expected shape (paper Figures 6–7): C3 beats Dynamic Snitching on\n\
         every percentile and carries 25–50% more read throughput."
    );
}
