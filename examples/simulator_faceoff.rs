//! The §6 simulator in one screen: every strategy against the same
//! fluctuating fleet, at high and low utilization.
//!
//! ```sh
//! cargo run --release --example simulator_faceoff
//! ```

use c3::core::Nanos;
use c3::metrics::Table;
use c3::sim::{SimConfig, Simulation, Strategy};

fn main() {
    for (util, label) in [
        (0.7, "high utilization (70%)"),
        (0.45, "low utilization (45%)"),
    ] {
        let mut table = Table::new(vec![
            "strategy",
            "median ms",
            "p99 ms",
            "p99.9 ms",
            "throughput/s",
        ]);
        for strategy in [
            Strategy::oracle(),
            Strategy::c3(),
            Strategy::lor(),
            Strategy::power_of_two(),
            Strategy::round_robin(),
            Strategy::least_response_time(),
            Strategy::weighted_random(),
            Strategy::random(),
        ] {
            let cfg = SimConfig {
                total_requests: 100_000,
                ..SimConfig::paper(strategy, 150, Nanos::from_millis(200), util)
            };
            let res = Simulation::new(cfg).run();
            let s = res.summary();
            table.row(vec![
                res.strategy.clone(),
                format!("{:.2}", s.metric_ms("median")),
                format!("{:.2}", s.metric_ms("p99")),
                format!("{:.2}", s.metric_ms("p999")),
                format!("{:.0}", res.throughput()),
            ]);
        }
        println!("{label}, 50 servers, T = 200 ms fluctuations:\n\n{table}");
    }
    println!(
        "Expected ordering (paper Figure 14): ORA ≤ C3 < LOR/P2C < LRT/\n\
         WRand/Random, with RR showing that rate limiting alone (no\n\
         ranking) does not cut the tail."
    );
}
