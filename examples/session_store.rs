//! Session-store scenario: the paper's update-heavy workload (50/50) —
//! plus the SSD variant — comparing C3 against the whole Table-1
//! landscape of replica-selection strategies.
//!
//! ```sh
//! cargo run --release --example session_store
//! ```

use c3::cluster::{Cluster, ClusterConfig, DiskKind, Strategy};
use c3::metrics::Table;
use c3::workload::WorkloadMix;

fn run(disk: DiskKind, label: &str) {
    let mut table = Table::new(vec![
        "strategy",
        "read median ms",
        "read p99 ms",
        "read p99.9 ms",
        "reads/s",
    ]);
    for strategy in [
        Strategy::c3(),
        Strategy::dynamic_snitching(),
        Strategy::lor(),
        Strategy::nearest_node(),
        Strategy::primary_only(),
    ] {
        let cfg = ClusterConfig {
            disk,
            total_ops: 100_000,
            warmup_ops: 8_000,
            ..ClusterConfig::paper(strategy, WorkloadMix::update_heavy())
        };
        let res = Cluster::new(cfg).run();
        let s = res.summary();
        table.row(vec![
            res.strategy.clone(),
            format!("{:.2}", s.metric_ms("median")),
            format!("{:.2}", s.metric_ms("p99")),
            format!("{:.2}", s.metric_ms("p999")),
            format!("{:.0}", res.read_throughput()),
        ]);
    }
    println!("session store (update-heavy 50/50), {label}:\n\n{table}");
}

fn main() {
    run(DiskKind::Spinning, "spinning disks (m1.xlarge-like)");
    run(DiskKind::Ssd, "SSDs (m3.xlarge-like)");
    println!(
        "Load-oblivious strategies (Nearest, Primary) pay dearly at the\n\
         tail whenever their chosen node hits a GC or compaction episode;\n\
         C3 routes around these within a few feedback round-trips."
    );
}
