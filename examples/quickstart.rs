//! Quickstart: drive the C3 selector directly against a toy in-memory
//! fleet of servers.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! Three "servers" with different (and shifting) service times are modelled
//! inline; the example shows the three things a C3 integration does:
//! `select` before each request, `on_send` when it goes out, and
//! `on_response` with the server's feedback when it completes — and prints
//! how the allocation tracks the fast servers.

use c3::core::{C3Config, C3Selector, Feedback, Nanos, ReplicaSelector, ResponseInfo, Selection};

/// A toy server: fixed service time + a queue that drains in real time.
struct ToyServer {
    service_ms: f64,
    queue_free_at: Nanos,
}

impl ToyServer {
    /// Serve a request arriving at `now`; returns (response_time, feedback).
    fn serve(&mut self, now: Nanos) -> (Nanos, Feedback) {
        let start = self.queue_free_at.max(now);
        let service = Nanos::from_millis_f64(self.service_ms);
        let done = start + service;
        self.queue_free_at = done;
        let queued = ((done.saturating_sub(now)).as_millis_f64() / self.service_ms) as u32;
        (done.saturating_sub(now), Feedback::new(queued, service))
    }
}

fn main() {
    let mut servers = [
        ToyServer {
            service_ms: 4.0,
            queue_free_at: Nanos::ZERO,
        },
        ToyServer {
            service_ms: 10.0,
            queue_free_at: Nanos::ZERO,
        },
        ToyServer {
            service_ms: 6.0,
            queue_free_at: Nanos::ZERO,
        },
    ];

    // One client, three replicas, paper-default parameters.
    let mut c3 = C3Selector::new(servers.len(), C3Config::for_clients(1), Nanos::ZERO);
    let group = [0usize, 1, 2];
    let mut counts = [0u64; 3];
    let mut now = Nanos::from_millis(1);

    for i in 0..3000 {
        // Halfway through, the fast server degrades and server 2 speeds up:
        // C3 must shift its preference.
        if i == 1500 {
            servers[0].service_ms = 20.0;
            servers[2].service_ms = 3.0;
            println!("-- server 0 degrades to 20 ms, server 2 improves to 3 ms --");
        }
        match c3.select(&group, now) {
            Selection::Server(s) => {
                c3.on_send(s, now);
                counts[s] += 1;
                let (response_time, feedback) = servers[s].serve(now);
                c3.on_response(
                    s,
                    &ResponseInfo {
                        response_time,
                        feedback: Some(feedback),
                    },
                    now + response_time,
                );
            }
            Selection::Backpressure { retry_at } => {
                now = retry_at; // wait out the rate limiter
                continue;
            }
        }
        now += Nanos::from_micros(2500); // ~400 req/s offered vs ~516/s capacity
        if (i + 1) % 1500 == 0 {
            println!(
                "after {:4} requests: allocation = {:?} (scores: {:.1} / {:.1} / {:.1})",
                i + 1,
                counts,
                c3.state().score_of(0),
                c3.state().score_of(1),
                c3.state().score_of(2),
            );
            counts = [0; 3];
        }
    }
    println!(
        "\nC3 sent most traffic to the fastest replica in each phase, \
         without starving the others — that is replica ranking with \
         concurrency compensation at work."
    );
}
