//! Cross-crate integration tests: the headline claims of the paper must
//! hold end-to-end through the full stack (workload → simulator/cluster →
//! metrics), and runs must be reproducible.

use c3::cluster::{Cluster, ClusterConfig, ClusterStrategy};
use c3::core::Nanos;
use c3::sim::{SimConfig, Simulation, StrategyKind};
use c3::workload::WorkloadMix;

fn sim_cfg(strategy: StrategyKind) -> SimConfig {
    SimConfig {
        servers: 20,
        clients: 50,
        generators: 50,
        total_requests: 60_000,
        fluctuation_interval: Nanos::from_millis(300),
        strategy,
        seed: 5,
        ..SimConfig::default()
    }
}

fn cluster_cfg(strategy: ClusterStrategy) -> ClusterConfig {
    ClusterConfig {
        total_ops: 60_000,
        warmup_ops: 5_000,
        strategy,
        seed: 5,
        ..ClusterConfig::paper(strategy, WorkloadMix::read_heavy())
    }
}

#[test]
fn c3_beats_lor_at_the_tail_in_the_simulator() {
    // The paper's central §6 claim at slow fluctuations (Figure 14).
    let c3 = Simulation::new(sim_cfg(StrategyKind::C3)).run();
    let lor = Simulation::new(sim_cfg(StrategyKind::Lor)).run();
    assert!(
        c3.summary().p99_ns < lor.summary().p99_ns,
        "C3 p99 {} must beat LOR p99 {}",
        c3.summary().p99_ns,
        lor.summary().p99_ns
    );
}

#[test]
fn oracle_upper_bounds_c3() {
    let ora = Simulation::new(sim_cfg(StrategyKind::Oracle)).run();
    let c3 = Simulation::new(sim_cfg(StrategyKind::C3)).run();
    assert!(
        ora.summary().p99_ns <= c3.summary().p99_ns,
        "the oracle cannot lose to C3"
    );
}

#[test]
fn c3_beats_dynamic_snitching_in_the_cluster() {
    // The paper's central §5 claims: better tail AND better throughput.
    let c3 = Cluster::new(cluster_cfg(ClusterStrategy::C3)).run();
    let ds = Cluster::new(cluster_cfg(ClusterStrategy::DynamicSnitching)).run();
    assert!(
        c3.summary().p999_ns < ds.summary().p999_ns,
        "C3 p99.9 {} must beat DS p99.9 {}",
        c3.summary().p999_ns,
        ds.summary().p999_ns
    );
    assert!(
        c3.read_throughput() > ds.read_throughput(),
        "C3 throughput {} must beat DS {}",
        c3.read_throughput(),
        ds.read_throughput()
    );
}

#[test]
fn c3_conditions_load_better_than_ds() {
    // Figure 8: the busiest node under C3 serves a narrower load band.
    let c3 = Cluster::new(cluster_cfg(ClusterStrategy::C3)).run();
    let ds = Cluster::new(cluster_cfg(ClusterStrategy::DynamicSnitching)).run();
    let spread = |res: &c3::cluster::ClusterResult| {
        let w = &res.server_load[res.busiest_node()];
        let e = c3::metrics::Ecdf::from_samples(w.counts().to_vec());
        e.quantile(0.99).saturating_sub(e.quantile(0.5))
    };
    assert!(
        spread(&c3) < spread(&ds),
        "C3 load spread {} must be narrower than DS {}",
        spread(&c3),
        spread(&ds)
    );
}

#[test]
fn simulator_and_cluster_are_deterministic_end_to_end() {
    let a = Simulation::new(sim_cfg(StrategyKind::C3)).run();
    let b = Simulation::new(sim_cfg(StrategyKind::C3)).run();
    assert_eq!(a.events_processed, b.events_processed);
    assert_eq!(a.summary().p999_ns, b.summary().p999_ns);

    let x = Cluster::new(cluster_cfg(ClusterStrategy::C3)).run();
    let y = Cluster::new(cluster_cfg(ClusterStrategy::C3)).run();
    assert_eq!(x.events_processed, y.events_processed);
    assert_eq!(x.summary().p999_ns, y.summary().p999_ns);
}

#[test]
fn latency_includes_backpressure_time() {
    // With a severely under-provisioned rate cap (and growth effectively
    // frozen via a tiny s_max), C3 must park requests in backlog queues
    // and the recorded latencies must include that waiting time.
    let mut constrained = sim_cfg(StrategyKind::C3);
    constrained.clients = 5; // concentrate demand: ~5.6 req/δ per server pair
    constrained.c3.initial_rate = 2.0;
    constrained.c3.min_rate = 1.0;
    constrained.c3.smax = 0.2;
    constrained.total_requests = 20_000;
    let mut unconstrained = sim_cfg(StrategyKind::C3);
    unconstrained.clients = 5;
    unconstrained.total_requests = 20_000;
    let tight = Simulation::new(constrained).run();
    let free = Simulation::new(unconstrained).run();
    assert!(tight.backpressure_activations > free.backpressure_activations);
    assert!(
        tight.summary().mean_ns > free.summary().mean_ns,
        "a binding rate cap must show up in recorded latency: {} vs {}",
        tight.summary().mean_ns,
        free.summary().mean_ns
    );
}

#[test]
fn update_heavy_cluster_serves_both_kinds() {
    let mut cfg = cluster_cfg(ClusterStrategy::C3);
    cfg.mix = WorkloadMix::update_heavy();
    let res = Cluster::new(cfg).run();
    assert!(res.reads_completed > 20_000);
    assert!(res.updates_completed > 20_000);
    // Writes are memtable-cheap: their median must undercut reads'.
    assert!(
        res.update_latency.value_at_quantile(0.5) < res.read_latency.value_at_quantile(0.5)
    );
}

#[test]
fn read_repair_disabled_still_completes() {
    let mut cfg = cluster_cfg(ClusterStrategy::C3);
    cfg.read_repair_prob = 0.0;
    cfg.total_ops = 20_000;
    cfg.warmup_ops = 1_000;
    let res = Cluster::new(cfg).run();
    assert_eq!(res.reads_completed + res.updates_completed, 19_000);
}
