//! Cross-crate integration tests: the headline claims of the paper must
//! hold end-to-end through the full stack (workload → simulator/cluster →
//! metrics), and runs must be reproducible.

use c3::cluster::{Cluster, ClusterConfig};
use c3::core::Nanos;
use c3::engine::Strategy;
use c3::sim::{SimConfig, Simulation};
use c3::workload::WorkloadMix;

fn sim_cfg(strategy: Strategy) -> SimConfig {
    SimConfig {
        servers: 20,
        clients: 50,
        generators: 50,
        total_requests: 60_000,
        fluctuation_interval: Nanos::from_millis(300),
        strategy,
        seed: 5,
        ..SimConfig::default()
    }
}

fn cluster_cfg(strategy: Strategy) -> ClusterConfig {
    ClusterConfig {
        total_ops: 60_000,
        warmup_ops: 5_000,
        seed: 5,
        ..ClusterConfig::paper(strategy, WorkloadMix::read_heavy())
    }
}

#[test]
fn c3_beats_lor_at_the_tail_in_the_simulator() {
    // The paper's central §6 claim at slow fluctuations (Figure 14).
    let c3 = Simulation::new(sim_cfg(Strategy::c3())).run();
    let lor = Simulation::new(sim_cfg(Strategy::lor())).run();
    assert!(
        c3.summary().p99_ns < lor.summary().p99_ns,
        "C3 p99 {} must beat LOR p99 {}",
        c3.summary().p99_ns,
        lor.summary().p99_ns
    );
}

#[test]
fn oracle_upper_bounds_c3() {
    let ora = Simulation::new(sim_cfg(Strategy::oracle())).run();
    let c3 = Simulation::new(sim_cfg(Strategy::c3())).run();
    assert!(
        ora.summary().p99_ns <= c3.summary().p99_ns,
        "the oracle cannot lose to C3"
    );
}

#[test]
fn c3_beats_dynamic_snitching_in_the_cluster() {
    // The paper's central §5 claims: better tail AND better throughput.
    // p99.9 over a 55k-op run rests on ~55 samples, so the tail claim is
    // checked on the mean across three seeds rather than a single draw.
    let run = |strategy: Strategy, seed: u64| {
        let mut cfg = cluster_cfg(strategy);
        cfg.seed = seed;
        Cluster::new(cfg).run()
    };
    let mut c3_p999 = 0.0;
    let mut ds_p999 = 0.0;
    for seed in [1u64, 2, 3] {
        let c3 = run(Strategy::c3(), seed);
        let ds = run(Strategy::dynamic_snitching(), seed);
        c3_p999 += c3.summary().p999_ns as f64 / 3.0;
        ds_p999 += ds.summary().p999_ns as f64 / 3.0;
        assert!(
            c3.summary().p99_ns < ds.summary().p99_ns,
            "seed {seed}: C3 p99 {} must beat DS p99 {}",
            c3.summary().p99_ns,
            ds.summary().p99_ns
        );
        assert!(
            c3.read_throughput() > ds.read_throughput(),
            "seed {seed}: C3 throughput {} must beat DS {}",
            c3.read_throughput(),
            ds.read_throughput()
        );
    }
    assert!(
        c3_p999 < ds_p999,
        "C3 mean p99.9 {c3_p999} must beat DS mean p99.9 {ds_p999}"
    );
}

#[test]
fn c3_conditions_load_better_than_ds() {
    // Figure 8: the busiest node under C3 serves a narrower load band.
    let c3 = Cluster::new(cluster_cfg(Strategy::c3())).run();
    let ds = Cluster::new(cluster_cfg(Strategy::dynamic_snitching())).run();
    let spread = |res: &c3::cluster::ClusterResult| {
        let w = &res.server_load[res.busiest_node()];
        let e = c3::metrics::Ecdf::from_samples(w.counts().to_vec());
        e.quantile(0.99).saturating_sub(e.quantile(0.5))
    };
    assert!(
        spread(&c3) < spread(&ds),
        "C3 load spread {} must be narrower than DS {}",
        spread(&c3),
        spread(&ds)
    );
}

/// Bit-identical comparison of two latency summaries (including the f64
/// mean, compared by bits, not tolerance).
fn assert_summaries_identical(a: &c3::metrics::LatencySummary, b: &c3::metrics::LatencySummary) {
    assert_eq!(a.count, b.count);
    assert_eq!(a.mean_ns.to_bits(), b.mean_ns.to_bits(), "mean differs");
    assert_eq!(a.p50_ns, b.p50_ns);
    assert_eq!(a.p95_ns, b.p95_ns);
    assert_eq!(a.p99_ns, b.p99_ns);
    assert_eq!(a.p999_ns, b.p999_ns);
    assert_eq!(a.max_ns, b.max_ns);
}

#[test]
fn simulator_and_cluster_are_deterministic_end_to_end() {
    // Same seed + same scenario ⇒ bit-identical latency summaries, event
    // counts and durations across independent runs of both frontends.
    let a = Simulation::new(sim_cfg(Strategy::c3())).run();
    let b = Simulation::new(sim_cfg(Strategy::c3())).run();
    assert_eq!(a.events_processed, b.events_processed);
    assert_eq!(a.duration, b.duration);
    assert_summaries_identical(&a.summary(), &b.summary());

    let x = Cluster::new(cluster_cfg(Strategy::c3())).run();
    let y = Cluster::new(cluster_cfg(Strategy::c3())).run();
    assert_eq!(x.events_processed, y.events_processed);
    assert_eq!(x.duration, y.duration);
    assert_summaries_identical(&x.summary(), &y.summary());
    assert_summaries_identical(
        &c3::metrics::LatencySummary::from_histogram(&x.update_latency),
        &c3::metrics::LatencySummary::from_histogram(&y.update_latency),
    );
}

#[test]
fn scenario_runner_matches_legacy_entry_point() {
    // The §6 scenario driven explicitly through the engine's
    // ScenarioRunner must reproduce `Simulation::run()` bit-for-bit.
    use c3::engine::{ScenarioRunner, SeedSeq};
    use c3::sim::SimScenario;

    let cfg = sim_cfg(Strategy::c3());
    let legacy = Simulation::new(cfg.clone()).run();

    let runner = ScenarioRunner::new(cfg.seed).with_warmup(cfg.warmup_requests);
    assert_eq!(runner.seeds(), &SeedSeq::new(cfg.seed));
    let mut scenario = SimScenario::new(cfg.clone());
    let (metrics, stats) = runner.run(&mut scenario, cfg.servers, cfg.load_window);
    let (via_runner, _probe) = scenario.into_result(metrics, stats);

    assert_eq!(via_runner.completed, legacy.completed);
    assert_eq!(via_runner.events_processed, legacy.events_processed);
    assert_eq!(via_runner.duration, legacy.duration);
    assert_eq!(
        via_runner.backpressure_activations,
        legacy.backpressure_activations
    );
    assert_summaries_identical(&via_runner.summary(), &legacy.summary());
}

#[test]
fn latency_includes_backpressure_time() {
    // With a severely under-provisioned rate cap (and growth effectively
    // frozen via a tiny s_max), C3 must park requests in backlog queues
    // and the recorded latencies must include that waiting time.
    let mut constrained = sim_cfg(Strategy::c3());
    constrained.clients = 5; // concentrate demand: ~5.6 req/δ per server pair
    constrained.c3.initial_rate = 2.0;
    constrained.c3.min_rate = 1.0;
    constrained.c3.smax = 0.2;
    constrained.total_requests = 20_000;
    let mut unconstrained = sim_cfg(Strategy::c3());
    unconstrained.clients = 5;
    unconstrained.total_requests = 20_000;
    let tight = Simulation::new(constrained).run();
    let free = Simulation::new(unconstrained).run();
    assert!(tight.backpressure_activations > free.backpressure_activations);
    assert!(
        tight.summary().mean_ns > free.summary().mean_ns,
        "a binding rate cap must show up in recorded latency: {} vs {}",
        tight.summary().mean_ns,
        free.summary().mean_ns
    );
}

#[test]
fn update_heavy_cluster_serves_both_kinds() {
    let mut cfg = cluster_cfg(Strategy::c3());
    cfg.mix = WorkloadMix::update_heavy();
    let res = Cluster::new(cfg).run();
    assert!(res.reads_completed > 20_000);
    assert!(res.updates_completed > 20_000);
    // Writes are memtable-cheap: their median must undercut reads'.
    assert!(res.update_latency.value_at_quantile(0.5) < res.read_latency.value_at_quantile(0.5));
}

#[test]
fn scenario_library_runs_are_bit_identical_across_repeats_and_thread_counts() {
    // Every scenario in the library must produce bit-identical RunMetrics
    // summaries (the fingerprint hashes every percentile, the f64 mean and
    // throughput by bits, and the kernel event counts) across repeated
    // runs AND across `run_all` fan-out thread counts (1 vs 4).
    use c3::scenarios::ScenarioRegistry;

    let reg = ScenarioRegistry::with_defaults();
    let names = reg.names();
    let strategies = [Strategy::c3(), Strategy::lor()];
    let seeds = [1u64, 2];
    let sweep = |threads: usize| -> Vec<u64> {
        reg.sweep(&names, &strategies, &seeds, 3_000, threads)
            .into_iter()
            .map(|r| r.expect("all cells supported").fingerprint())
            .collect()
    };
    let serial = sweep(1);
    assert_eq!(serial.len(), names.len() * strategies.len() * seeds.len());
    assert_eq!(serial, sweep(4), "thread count must not change results");
    assert_eq!(serial, sweep(1), "repeated runs must be bit-identical");
}

#[test]
fn parallel_run_all_matches_serial_for_the_simulator() {
    // The engine-level fan-out applied to a real frontend: per-seed §6
    // runs through `ScenarioRunner::run_all` are bit-identical whether
    // computed on one thread or four.
    use c3::engine::ScenarioRunner;

    let job = |runner: c3::engine::ScenarioRunner| {
        let mut cfg = sim_cfg(Strategy::c3());
        cfg.total_requests = 5_000;
        cfg.seed = runner.seeds().seed();
        let res = Simulation::new(cfg).run();
        (
            res.seed,
            res.events_processed,
            res.summary().p99_ns,
            res.summary().mean_ns.to_bits(),
        )
    };
    let seeds = [5u64, 6, 7, 8];
    let serial = ScenarioRunner::run_all(&seeds, 1, job);
    let parallel = ScenarioRunner::run_all(&seeds, 4, job);
    assert_eq!(serial, parallel);
}

#[test]
fn read_repair_disabled_still_completes() {
    let mut cfg = cluster_cfg(Strategy::c3());
    cfg.read_repair_prob = 0.0;
    cfg.total_ops = 20_000;
    cfg.warmup_ops = 1_000;
    let res = Cluster::new(cfg).run();
    assert_eq!(res.reads_completed + res.updates_completed, 19_000);
}
