//! Property tests pitting the engine's three-tier calendar queue against
//! a naive sorted-vec model under adversarial schedules.
//!
//! The calendar queue's correctness argument has sharp corners that unit
//! tests hit one at a time: events landing exactly on epoch boundaries,
//! events more than one ring span ahead (parked in the overflow tier and
//! lazily merged as the horizon advances), bursts clustered into a single
//! epoch (the whole-bucket swap/sort refill path), and cancellations
//! interleaved with all of the above (lazy slab invalidation). Here a
//! seeded adversary mixes every one of those shapes at the bench matrix's
//! pending-count profiles — 128, 4096 and 65536 — and every pop must
//! match a model so simple it is obviously correct: a vector sorted by
//! `(time, seq)`.

use c3::core::Nanos;
use c3::engine::EventQueue;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

// Private kernel geometry, restated: bucket epochs are `time >> 15`
// (~32.8 µs) and the ring holds 2048 of them, so anything scheduled one
// span (~67 ms) past the horizon takes the overflow tier.
const EPOCH: u64 = 1 << 15;
const RING_SPAN: u64 = 2048 << 15;

/// One adversarial delay, mixing the shapes the tiers disagree about.
fn adversarial_delay(rng: &mut SmallRng) -> u64 {
    match rng.gen_range(0..6u32) {
        // Exact epoch-boundary hits (and zero: fire "now").
        0 => rng.gen_range(0..8u64) * EPOCH,
        // Just around a boundary: the off-by-one neighborhood.
        1 => rng.gen_range(1..8u64) * EPOCH - 1 + rng.gen_range(0..3u64),
        // Clustered same-epoch burst fodder.
        2 => rng.gen_range(0..64u64),
        // More than one ring span ahead: the overflow tier, up to ~5 spans
        // (several horizon jumps and lazy merges before it fires).
        3 => RING_SPAN + rng.gen_range(0..4 * RING_SPAN),
        // Exactly one span: the first epoch past the ring's window.
        4 => RING_SPAN,
        // Anywhere inside the ring.
        _ => rng.gen_range(0..RING_SPAN),
    }
}

/// The model: `(time, seq, id)` kept sorted descending, popped off the
/// end — ascending `(time, seq)` order, the kernel's contract.
#[derive(Default)]
struct Model {
    pending: Vec<(u64, u64, u64)>,
}

impl Model {
    fn insert(&mut self, time: u64, seq: u64, id: u64) {
        let key = (time, seq);
        let at = self.pending.partition_point(|&(t, s, _)| (t, s) > key);
        self.pending.insert(at, (time, seq, id));
    }

    fn pop(&mut self) -> Option<(u64, u64)> {
        self.pending.pop().map(|(t, _, id)| (t, id))
    }

    fn remove_by_id(&mut self, id: u64) -> bool {
        match self.pending.iter().rposition(|&(_, _, i)| i == id) {
            Some(at) => {
                self.pending.remove(at);
                true
            }
            None => false,
        }
    }
}

/// Fill to `pending` events, churn `steps` pop+push rounds with
/// interleaved cancellations, then drain — asserting every pop against
/// the model. `seq` is tracked externally: the kernel allocates one per
/// schedule call, in call order.
fn duel(pending: usize, steps: usize, seed: u64) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut q: EventQueue<u64> = EventQueue::new();
    let mut model = Model::default();
    // Live cancellable timers as (id, TimerId); stale entries are culled
    // when their event pops.
    let mut timers = Vec::new();
    let mut next_seq = 0u64;
    let mut next_id = 0u64;

    let push = |q: &mut EventQueue<u64>,
                model: &mut Model,
                timers: &mut Vec<(u64, c3::engine::TimerId)>,
                rng: &mut SmallRng,
                next_seq: &mut u64,
                next_id: &mut u64| {
        let at = q.now().as_nanos() + adversarial_delay(rng);
        let id = *next_id;
        *next_id += 1;
        if rng.gen_range(0..4u32) == 0 {
            timers.push((id, q.schedule_cancellable(Nanos(at), id)));
        } else {
            q.schedule(Nanos(at), id);
        }
        model.insert(at, *next_seq, id);
        *next_seq += 1;
    };

    for _ in 0..pending {
        push(
            &mut q,
            &mut model,
            &mut timers,
            &mut rng,
            &mut next_seq,
            &mut next_id,
        );
    }
    assert_eq!(q.len(), pending);

    let pop_and_check = |q: &mut EventQueue<u64>,
                         model: &mut Model,
                         timers: &mut Vec<(u64, c3::engine::TimerId)>| {
        let got = q.pop();
        let want = model.pop();
        assert_eq!(
            got.map(|(t, id)| (t.as_nanos(), id)),
            want,
            "pop order diverged from the sorted-vec model"
        );
        if let Some((_, id)) = want {
            timers.retain(|&(tid, _)| tid != id);
        }
    };

    for _ in 0..steps {
        pop_and_check(&mut q, &mut model, &mut timers);
        // Interleaved cancellation of a random live timer.
        if !timers.is_empty() && rng.gen_range(0..8u32) == 0 {
            let at = rng.gen_range(0..timers.len());
            let (id, timer) = timers.swap_remove(at);
            let got = q.cancel(timer);
            assert_eq!(got, Some(id), "timer {id} should still be live");
            assert!(model.remove_by_id(id), "model lost timer {id}");
            // Keep the census: replace the cancelled event too.
            push(
                &mut q,
                &mut model,
                &mut timers,
                &mut rng,
                &mut next_seq,
                &mut next_id,
            );
        }
        push(
            &mut q,
            &mut model,
            &mut timers,
            &mut rng,
            &mut next_seq,
            &mut next_id,
        );
        assert_eq!(q.len(), model.pending.len());
    }

    while !model.pending.is_empty() {
        pop_and_check(&mut q, &mut model, &mut timers);
    }
    assert_eq!(q.pop(), None);
    assert!(q.is_empty());
}

proptest! {
    /// The bench matrix's small profile: every pop matches the model.
    #[test]
    fn churn_at_128_pending_matches_the_model(seed in 0u64..1 << 32) {
        duel(128, 400, seed);
    }

    /// The regression profile this PR fixes — 4096 pending, where the
    /// two-tier design lost to the legacy heap.
    #[test]
    fn churn_at_4096_pending_matches_the_model(seed in 0u64..1 << 32) {
        duel(4096, 300, seed);
    }
}

/// The mega-fleet profile. Too big to sample 64 ways under the default
/// proptest budget in debug builds, so a handful of fixed seeds — the
/// adversary inside `duel` is what carries the coverage.
#[test]
fn churn_at_65536_pending_matches_the_model() {
    for seed in [1, 7, 42] {
        duel(65_536, 150, seed);
    }
}
