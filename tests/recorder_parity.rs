//! Streaming-vs-exact recorder parity at the runner level.
//!
//! `ScenarioRunner::with_exact_latency` runs an exact (every-sample)
//! reservoir alongside the streaming log-linear histograms. These tests
//! pin the two contracts that make the flag safe to reach for:
//!
//! 1. the streaming percentiles stay within one log-linear bucket width
//!    of the exact order statistics (p50/p95/p99/p99.9), and
//! 2. enabling the flag changes *nothing else* — the simulated event
//!    stream and the streaming histograms are bit-identical with and
//!    without it.

use c3::core::Nanos;
use c3::engine::{ChannelId, ScenarioRunner};
use c3::sim::{SimConfig, SimScenario, Strategy};

const LATENCY: ChannelId = ChannelId::new(0);

fn cfg(strategy: Strategy) -> SimConfig {
    SimConfig {
        servers: 12,
        clients: 24,
        generators: 24,
        total_requests: 20_000,
        fluctuation_interval: Nanos::from_millis(100),
        strategy,
        seed: 21,
        ..SimConfig::default()
    }
}

#[test]
fn exact_percentiles_within_one_bucket_of_streaming() {
    for strategy in [Strategy::c3(), Strategy::lor()] {
        let c = cfg(strategy.clone());
        let runner = ScenarioRunner::new(c.seed)
            .with_warmup(c.warmup_requests)
            .with_exact_latency();
        let mut scenario = SimScenario::new(c.clone());
        let (metrics, _) = runner.run(&mut scenario, c.servers, c.load_window);
        assert!(metrics.exact_enabled());

        let exact = metrics.summary(LATENCY);
        let stream = metrics.streaming_summary(LATENCY);
        assert_eq!(exact.count, stream.count);
        for (name, e, s) in [
            ("p50", exact.p50_ns, stream.p50_ns),
            ("p95", exact.p95_ns, stream.p95_ns),
            ("p99", exact.p99_ns, stream.p99_ns),
            ("p99.9", exact.p999_ns, stream.p999_ns),
        ] {
            // One log-linear bucket at value v is at most v/64 wide
            // (SUB_BITS = 7 ⇒ 64 sub-buckets per power of two).
            let bucket = e as f64 / 64.0 + 1.0;
            assert!(
                (s as f64 - e as f64).abs() <= bucket,
                "{strategy}/{name}: streaming {s} vs exact {e} off by more than one bucket"
            );
        }
        // max is exact in both recorders.
        assert_eq!(exact.max_ns, stream.max_ns, "{strategy}: max must be exact");
    }
}

#[test]
fn exact_flag_does_not_change_the_run() {
    let c = cfg(Strategy::c3());
    let run = |exact: bool| {
        let mut runner = ScenarioRunner::new(c.seed).with_warmup(c.warmup_requests);
        if exact {
            runner = runner.with_exact_latency();
        }
        let mut scenario = SimScenario::new(c.clone());
        let (metrics, stats) = runner.run(&mut scenario, c.servers, c.load_window);
        let s = metrics.streaming_summary(LATENCY);
        (
            stats.events_processed,
            metrics.measured(LATENCY),
            s.p50_ns,
            s.p99_ns,
            s.p999_ns,
            s.mean_ns.to_bits(),
        )
    };
    assert_eq!(run(false), run(true));
}
