//! Property tests over the strategy registry (via the proptest shim):
//! every registered name resolves, resolution is case-stable, and two
//! selectors built from the same name behave identically on a shared
//! replay trace.

use c3::core::{C3Config, Feedback, Nanos, ReplicaSelector, ResponseInfo, Selection};
use c3::engine::{BuiltSelector, SelectorCtx, Strategy, StrategyRegistry};
// The canonical full registry (engine defaults + cluster-registered DS) —
// the same table every scenario resolves against.
use c3::scenarios::scenario_registry as full_registry;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const SERVERS: usize = 6;

fn ctx(seed: u64) -> SelectorCtx {
    SelectorCtx {
        servers: SERVERS,
        c3: C3Config::for_clients(10),
        seed,
        now: Nanos::ZERO,
    }
}

/// One step of a replay trace, as observed by the driver.
#[derive(Debug, PartialEq)]
enum Decision {
    Sent(usize),
    Backpressure(Nanos),
}

/// Drive a selector through a deterministic trace derived from
/// `trace_seed`: rotating replica groups, per-step response times and
/// piggybacked feedback. Returns the full decision sequence.
fn replay(selector: &mut dyn ReplicaSelector, steps: usize, trace_seed: u64) -> Vec<Decision> {
    let mut rng = SmallRng::seed_from_u64(trace_seed);
    let mut decisions = Vec::with_capacity(steps);
    for step in 0..steps {
        let now = Nanos::from_micros(500 * (step as u64 + 1));
        let g = rng.gen_range(0..SERVERS);
        let group: Vec<usize> = (0..3).map(|k| (g + k) % SERVERS).collect();
        match selector.select(&group, now) {
            Selection::Server(server) => {
                decisions.push(Decision::Sent(server));
                selector.on_send(server, now);
                let feedback = Feedback::new(
                    rng.gen_range(0u32..12),
                    Nanos::from_micros(rng.gen_range(200u64..8_000)),
                );
                let response_time = Nanos::from_micros(rng.gen_range(300u64..20_000));
                selector.on_response(
                    server,
                    &ResponseInfo {
                        response_time,
                        feedback: Some(feedback),
                    },
                    now,
                );
            }
            Selection::Backpressure { retry_at } => {
                decisions.push(Decision::Backpressure(retry_at));
                // Draw the same amount of randomness as the sent path so
                // later steps stay aligned across replicas of the trace.
                let _ = rng.gen_range(0u32..12);
                let _ = rng.gen_range(200u64..8_000);
                let _ = rng.gen_range(300u64..20_000);
            }
        }
    }
    decisions
}

/// Registered names, plus a few members of the dynamic `C3-b{n}` family
/// the registry resolves without registration.
fn all_names(reg: &StrategyRegistry) -> Vec<String> {
    let mut names: Vec<String> = reg.names().into_iter().map(String::from).collect();
    names.extend(["C3-b1", "C3-b2", "C3-b4"].map(String::from));
    names
}

proptest! {
    /// Every name in the registry resolves — client-local strategies to a
    /// working selector, the simulator-global `ORA` to the Oracle marker —
    /// and `contains` agrees with `build`.
    #[test]
    fn every_registered_name_resolves(seed in 0u64..1_000) {
        let reg = full_registry();
        for name in all_names(&reg) {
            let strategy = Strategy::named(name.clone());
            prop_assert!(reg.contains(&strategy), "{name} not contained");
            match reg.build(&strategy, &ctx(seed)) {
                Ok(BuiltSelector::Selector(s)) => {
                    prop_assert!(!s.name().is_empty(), "{name} has no label");
                }
                Ok(BuiltSelector::Oracle) => {
                    prop_assert!(strategy.is_oracle(), "only ORA may be global: {name}");
                }
                Err(e) => prop_assert!(false, "{name} failed to build: {e}"),
            }
        }
    }

    /// Resolution is case-stable: a name round-trips through
    /// `Strategy::named` unchanged, repeated lookups agree, and no two
    /// registered names collide when case is folded — so a name is never
    /// one case-flip away from silently resolving to a different strategy.
    #[test]
    fn resolution_is_case_stable(seed in 0u64..1_000) {
        let reg = full_registry();
        let names = all_names(&reg);
        for name in &names {
            let a = Strategy::named(name.clone());
            let b = Strategy::named(name.to_string());
            prop_assert_eq!(&a, &b);
            prop_assert_eq!(a.name(), name.as_str());
            prop_assert_eq!(a.label(), name.as_str());
            prop_assert_eq!(reg.contains(&a), reg.contains(&b));
            let built_twice = (
                reg.build(&a, &ctx(seed)).is_ok(),
                reg.build(&b, &ctx(seed)).is_ok(),
            );
            prop_assert_eq!(built_twice.0, built_twice.1);
        }
        for (i, x) in names.iter().enumerate() {
            for y in &names[i + 1..] {
                prop_assert!(
                    x.to_lowercase() != y.to_lowercase(),
                    "names {x:?} and {y:?} collide under case folding"
                );
            }
        }
    }

    /// Two selectors built from the same name (and the same client seed)
    /// make identical choices on a shared replay trace — resolution has no
    /// hidden per-build state.
    #[test]
    fn same_name_same_choices_on_shared_trace(
        seed in 0u64..10_000,
        trace_seed in 0u64..10_000,
        steps in 1usize..200,
    ) {
        let reg = full_registry();
        for name in all_names(&reg) {
            let strategy = Strategy::named(name.clone());
            let build = || reg.build(&strategy, &ctx(seed)).expect("resolves");
            let (first, second) = (build(), build());
            let (mut first, mut second) = match (first, second) {
                (BuiltSelector::Selector(a), BuiltSelector::Selector(b)) => (a, b),
                (BuiltSelector::Oracle, BuiltSelector::Oracle) => continue,
                _ => {
                    prop_assert!(false, "{name} resolved to different kinds");
                    unreachable!()
                }
            };
            let a = replay(first.as_mut(), steps, trace_seed);
            let b = replay(second.as_mut(), steps, trace_seed);
            prop_assert_eq!(a, b, "{} diverged on the shared trace", name);
        }
    }
}
