//! Paper-claim test tier: slower, multi-seed assertions of the headline
//! C3-vs-baseline claims under the scenario library's adverse conditions.
//!
//! Ignored by default (they re-run whole scenario sweeps); execute with
//!
//! ```sh
//! cargo test --release --test claims -- --ignored
//! ```
//!
//! Every claim averages at least three seeds — single-seed tails at these
//! run lengths rest on a few dozen samples and can flip on one draw (the
//! same reason the tier-1 DS claim averages three seeds).

use c3::engine::Strategy;
use c3::scenarios::{ScenarioParams, ScenarioRegistry, HETERO_FLEET, MULTI_TENANT, PARTITION_FLUX};

const OPS: u64 = 20_000;

/// The claim seeds: `1..=C3_CLAIM_SEEDS` (default 3). The nightly tier
/// widens the set to harden the averaged claims against single-draw luck.
fn claim_seeds() -> Vec<u64> {
    let n = std::env::var("C3_CLAIM_SEEDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(3);
    (1..=n).collect()
}

/// Mean headline-channel p99 (ms) across the claim seeds.
fn mean_p99(reg: &ScenarioRegistry, scenario: &str, strategy: Strategy) -> f64 {
    let seeds = claim_seeds();
    seeds
        .iter()
        .map(|&seed| {
            reg.run(
                scenario,
                &ScenarioParams::sized(strategy.clone(), seed, OPS),
            )
            .unwrap_or_else(|e| panic!("{scenario}/{strategy}: {e}"))
            .p99_ms()
        })
        .sum::<f64>()
        / seeds.len() as f64
}

#[test]
#[ignore = "paper-claim tier: multi-seed scenario sweeps; run with --ignored"]
fn c3_beats_dynamic_snitching_p99_under_partition_flux() {
    // The recovery-path claim: when replicas black out and return, C3's
    // rate control collapses traffic into the hole and re-probes on
    // recovery, while DS's interval-frozen rankings keep herding into the
    // dark node. The paper's §5 advantage must survive — and widen — here.
    let reg = ScenarioRegistry::with_defaults();
    let c3 = mean_p99(&reg, PARTITION_FLUX, Strategy::c3());
    let ds = mean_p99(&reg, PARTITION_FLUX, Strategy::dynamic_snitching());
    assert!(
        c3 < ds,
        "partition-flux: C3 mean p99 {c3:.2} ms must beat DS {ds:.2} ms"
    );
}

#[test]
#[ignore = "paper-claim tier: multi-seed scenario sweeps; run with --ignored"]
fn c3_beats_dynamic_snitching_p99_on_a_heterogeneous_fleet() {
    // Permanent hardware tiers: C3's μ̄-aware ranking must learn the slow
    // tier from feedback and keep the read tail below DS's.
    let reg = ScenarioRegistry::with_defaults();
    let c3 = mean_p99(&reg, HETERO_FLEET, Strategy::c3());
    let ds = mean_p99(&reg, HETERO_FLEET, Strategy::dynamic_snitching());
    assert!(
        c3 < ds,
        "hetero-fleet: C3 mean p99 {c3:.2} ms must beat DS {ds:.2} ms"
    );
}

#[test]
#[ignore = "paper-claim tier: multi-seed scenario sweeps; run with --ignored"]
fn c3_protects_the_interactive_tenant_against_dynamic_snitching() {
    // Multi-tenant: the latency-sensitive tenant's own named channel —
    // not just the aggregate — must be better off under C3 than DS.
    let reg = ScenarioRegistry::with_defaults();
    let tenant_p99 = |strategy: Strategy| -> f64 {
        let seeds = claim_seeds();
        seeds
            .iter()
            .map(|&seed| {
                reg.run(
                    MULTI_TENANT,
                    &ScenarioParams::sized(strategy.clone(), seed, OPS),
                )
                .expect("supported")
                .channel("interactive")
                .expect("named tenant channel")
                .summary
                .metric_ms("p99")
            })
            .sum::<f64>()
            / seeds.len() as f64
    };
    let c3 = tenant_p99(Strategy::c3());
    let ds = tenant_p99(Strategy::dynamic_snitching());
    assert!(
        c3 < ds,
        "multi-tenant interactive channel: C3 mean p99 {c3:.2} ms must beat DS {ds:.2} ms"
    );
}
