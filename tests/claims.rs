//! Paper-claim test tier: slower, multi-seed assertions of the headline
//! C3-vs-baseline claims under the scenario library's adverse conditions.
//!
//! Ignored by default (they re-run whole scenario sweeps); execute with
//!
//! ```sh
//! cargo test --release --test claims -- --ignored
//! ```
//!
//! Every claim averages at least three seeds — single-seed tails at these
//! run lengths rest on a few dozen samples and can flip on one draw (the
//! same reason the tier-1 DS claim averages three seeds).

use c3::engine::Strategy;
use c3::scenarios::{
    run_fault_flux, scenario_registry, FaultFluxConfig, RunOptions, ScenarioParams,
    ScenarioRegistry, CRASH_FLUX, HETERO_FLEET, MULTI_TENANT, PARTITION_FLUX,
};
use c3::telemetry::{attribute_tail, Recorder, TracePoint};

const OPS: u64 = 20_000;

/// The claim seeds: `1..=C3_CLAIM_SEEDS` (default 3). The nightly tier
/// widens the set to harden the averaged claims against single-draw luck.
fn claim_seeds() -> Vec<u64> {
    let n = std::env::var("C3_CLAIM_SEEDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(3);
    (1..=n).collect()
}

/// Mean headline-channel p99 (ms) across the claim seeds.
fn mean_p99(reg: &ScenarioRegistry, scenario: &str, strategy: Strategy) -> f64 {
    let seeds = claim_seeds();
    seeds
        .iter()
        .map(|&seed| {
            reg.run(
                scenario,
                &ScenarioParams::sized(strategy.clone(), seed, OPS),
            )
            .unwrap_or_else(|e| panic!("{scenario}/{strategy}: {e}"))
            .p99_ms()
        })
        .sum::<f64>()
        / seeds.len() as f64
}

#[test]
#[ignore = "paper-claim tier: multi-seed scenario sweeps; run with --ignored"]
fn c3_beats_dynamic_snitching_p99_under_partition_flux() {
    // The recovery-path claim: when replicas black out and return, C3's
    // rate control collapses traffic into the hole and re-probes on
    // recovery, while DS's interval-frozen rankings keep herding into the
    // dark node. The paper's §5 advantage must survive — and widen — here.
    let reg = ScenarioRegistry::with_defaults();
    let c3 = mean_p99(&reg, PARTITION_FLUX, Strategy::c3());
    let ds = mean_p99(&reg, PARTITION_FLUX, Strategy::dynamic_snitching());
    assert!(
        c3 < ds,
        "partition-flux: C3 mean p99 {c3:.2} ms must beat DS {ds:.2} ms"
    );
}

#[test]
#[ignore = "paper-claim tier: multi-seed scenario sweeps; run with --ignored"]
fn c3_beats_dynamic_snitching_p99_on_a_heterogeneous_fleet() {
    // Permanent hardware tiers: C3's μ̄-aware ranking must learn the slow
    // tier from feedback and keep the read tail below DS's.
    let reg = ScenarioRegistry::with_defaults();
    let c3 = mean_p99(&reg, HETERO_FLEET, Strategy::c3());
    let ds = mean_p99(&reg, HETERO_FLEET, Strategy::dynamic_snitching());
    assert!(
        c3 < ds,
        "hetero-fleet: C3 mean p99 {c3:.2} ms must beat DS {ds:.2} ms"
    );
}

#[test]
#[ignore = "paper-claim tier: multi-seed scenario sweeps; run with --ignored"]
fn hardening_bounds_every_strategy_under_crash_flux_where_naked_ds_parks() {
    // The robustness headline: a selection strategy alone cannot bound
    // the tail when replicas crash and eat requests — the hardened
    // lifecycle (75 ms deadline, 3 retries, 30 ms hedge) can, for *every*
    // strategy. The bound is the worst retry chain the lifecycle permits
    // (deadline × (1 + retries) plus backoff ≈ 350 ms), with headroom.
    const P99_BOUND_MS: f64 = 400.0;
    let reg = ScenarioRegistry::with_defaults();
    let seeds = claim_seeds();
    for strategy in [
        Strategy::c3(),
        Strategy::dynamic_snitching(),
        Strategy::lor(),
        Strategy::power_of_two(),
        Strategy::primary_only(),
    ] {
        let bounded = seeds
            .iter()
            .filter(|&&seed| {
                let report = reg
                    .run(
                        CRASH_FLUX,
                        &ScenarioParams::sized(strategy.clone(), seed, OPS),
                    )
                    .expect("crash-flux drives every cluster strategy");
                report.p99_ms() < P99_BOUND_MS
            })
            .count();
        assert!(
            bounded * 3 >= seeds.len() * 2,
            "{}: hardened crash-flux p99 must stay under {P99_BOUND_MS} ms \
             on at least 2/3 of seeds, got {bounded}/{}",
            strategy.name(),
            seeds.len()
        );
    }

    // Naked DS — deadline only, no retries, no hedging — parks over 1% of
    // its ops in the crash windows: the PR 6 live-partition-flux zero as a
    // measured mechanism rather than a mystery.
    let strategies = scenario_registry();
    let mut parked_frac_sum = 0.0;
    for &seed in &seeds {
        let mut naked = FaultFluxConfig::crash_flux();
        naked.lifecycle.retries = 0;
        naked.lifecycle.hedge_after = None;
        naked.cluster.strategy = Strategy::dynamic_snitching();
        naked.cluster.seed = seed;
        naked.cluster.total_ops = OPS;
        naked.cluster.warmup_ops = OPS / 20;
        let report = run_fault_flux(&naked, &strategies, RunOptions::default()).report;
        let ops = report.total_completions() + report.parked;
        parked_frac_sum += report.parked as f64 / ops as f64;
    }
    let mean_parked = parked_frac_sum / seeds.len() as f64;
    assert!(
        mean_parked > 0.01,
        "naked DS must park >1% of crash-flux ops, parked {:.3}%",
        mean_parked * 100.0
    );
}

#[test]
#[ignore = "paper-claim tier: multi-seed scenario sweeps; run with --ignored"]
fn hedging_ledger_appears_in_crash_flux_tail_attribution() {
    // The hedge cost/benefit must be measurable, not just asserted: the
    // recorder's lifecycle events land in `attribute_tail`'s hedging
    // ledger (issues, wins, latency bought back vs duplicate service
    // burned), and the worst requests carry timeout/retry/hedge events —
    // what `trace_explain` prints for this scenario.
    let reg = ScenarioRegistry::with_defaults();
    let params = ScenarioParams::sized(Strategy::c3(), 1, OPS);
    let (_report, rec) = reg
        .run_recorded(CRASH_FLUX, &params, Recorder::new(256 * 1024))
        .expect("crash-flux supports C3");
    let (mut timeouts, mut retries, mut hedge_issues) = (0u64, 0u64, 0u64);
    for ev in rec.events() {
        match ev.point {
            TracePoint::Timeout { .. } => timeouts += 1,
            TracePoint::Retry { .. } => retries += 1,
            TracePoint::HedgeIssue { .. } => hedge_issues += 1,
            _ => {}
        }
    }
    assert!(timeouts > 0, "crash windows must expire deadlines");
    assert!(retries > 0, "expired reads must retry");
    assert!(hedge_issues > 0, "slow reads must hedge");

    let attr = attribute_tail(rec.events(), CRASH_FLUX, "C3", 0.99);
    assert!(attr.joined > 0, "lifecycles must join");
    assert!(attr.hedges > 0, "the ledger must count hedge issues");
    assert!(
        attr.hedge_wins > 0,
        "some hedges must win the race under crash-flux"
    );
    assert!(
        attr.mean_hedge_saved_ns.is_finite() || attr.hedge_rescues > 0,
        "hedge benefit must be measured: saved {} ns, rescues {}",
        attr.mean_hedge_saved_ns,
        attr.hedge_rescues
    );
}

#[test]
#[ignore = "paper-claim tier: multi-seed scenario sweeps; run with --ignored"]
fn c3_protects_the_interactive_tenant_against_dynamic_snitching() {
    // Multi-tenant: the latency-sensitive tenant's own named channel —
    // not just the aggregate — must be better off under C3 than DS.
    let reg = ScenarioRegistry::with_defaults();
    let tenant_p99 = |strategy: Strategy| -> f64 {
        let seeds = claim_seeds();
        seeds
            .iter()
            .map(|&seed| {
                reg.run(
                    MULTI_TENANT,
                    &ScenarioParams::sized(strategy.clone(), seed, OPS),
                )
                .expect("supported")
                .channel("interactive")
                .expect("named tenant channel")
                .summary
                .metric_ms("p99")
            })
            .sum::<f64>()
            / seeds.len() as f64
    };
    let c3 = tenant_p99(Strategy::c3());
    let ds = tenant_p99(Strategy::dynamic_snitching());
    assert!(
        c3 < ds,
        "multi-tenant interactive channel: C3 mean p99 {c3:.2} ms must beat DS {ds:.2} ms"
    );
}
