//! Determinism goldens: the exact `ScenarioReport` fingerprints of every
//! registry strategy × scenario cell, pinned as constants.
//!
//! The zero-allocation rewrite of the selector and metrics hot paths (PR 4)
//! must not change a single decision: scratch buffers replace `collect()`ed
//! vectors and the C3 ranking sort became a compute-once top-k pick, but
//! the visit order, RNG streams and recorded latencies stay bit-identical.
//! These goldens were captured *before* that rewrite and the suite asserts
//! the rewritten code reproduces them exactly — any change to a fingerprint
//! here means the hot-path "optimization" silently changed results.
//!
//! Regenerate (after an *intentional* behaviour change only) with:
//!
//! ```sh
//! cargo test --release --test fingerprint_goldens -- --ignored print_goldens --nocapture
//! ```

use c3::engine::Strategy;
use c3::scenarios::{ScenarioParams, ScenarioRegistry};

/// Scale of the golden runs: small enough to keep the suite quick, large
/// enough that every strategy exercises scoring, rate control and (for C3)
/// backpressure.
const OPS: u64 = 3_000;
const SEED: u64 = 1;

/// Fingerprint of one cell, or the marker for unsupported combinations
/// (ORA needs simulator-global state only multi-tenant provides).
const UNSUPPORTED: u64 = 0;

/// Compute the full strategy × scenario fingerprint matrix, in the
/// deterministic order `scenario (registry order) × strategy (registry
/// order)`.
fn compute_cells() -> Vec<(String, u64)> {
    let scenarios = ScenarioRegistry::with_defaults();
    let strategies = c3::scenarios::scenario_registry();
    let mut out = Vec::new();
    for scenario in scenarios.names() {
        for strategy in strategies.names() {
            let params = ScenarioParams::sized(Strategy::named(strategy), SEED, OPS);
            let fp = match scenarios.run(scenario, &params) {
                Ok(report) => report.fingerprint(),
                Err(_) => UNSUPPORTED,
            };
            out.push((format!("{scenario}/{strategy}"), fp));
        }
    }
    out
}

/// Digest of a §6 simulator run: everything the selector rewrite could
/// plausibly disturb (event count, completion count, latency percentiles,
/// the f64 mean by bits).
fn sim_digest(strategy: Strategy) -> SimDigest {
    use c3::core::Nanos;
    use c3::sim::{SimConfig, Simulation};
    let cfg = SimConfig {
        servers: 10,
        clients: 20,
        generators: 20,
        total_requests: 5_000,
        fluctuation_interval: Nanos::from_millis(100),
        strategy,
        seed: 7,
        ..SimConfig::default()
    };
    let res = Simulation::new(cfg).run();
    let s = res.summary();
    (
        res.events_processed,
        s.count,
        s.p50_ns,
        s.p999_ns,
        s.mean_ns.to_bits(),
    )
}

/// Digest of a §5 cluster run (covers DS and the coordinator path).
fn cluster_digest(strategy: Strategy) -> ClusterDigest {
    use c3::cluster::{Cluster, ClusterConfig};
    let cfg = ClusterConfig {
        nodes: 9,
        generators: 30,
        total_ops: 6_000,
        warmup_ops: 500,
        keys: 100_000,
        strategy,
        seed: 11,
        ..ClusterConfig::default()
    };
    let res = Cluster::new(cfg).run();
    (
        res.events_processed,
        res.reads_completed,
        res.read_latency.value_at_quantile(0.99),
        res.summary().mean_ns.to_bits(),
    )
}

/// Print the current values in golden-table form (regeneration helper).
#[test]
#[ignore]
fn print_goldens() {
    println!("const SCENARIO_GOLDENS: &[(&str, u64)] = &[");
    for (cell, fp) in compute_cells() {
        println!("    (\"{cell}\", {fp}),");
    }
    println!("];");
    for s in SIM_STRATEGIES {
        println!("sim {s}: {:?}", sim_digest(Strategy::named(*s)));
    }
    for s in CLUSTER_STRATEGIES {
        println!("cluster {s}: {:?}", cluster_digest(Strategy::named(*s)));
    }
}

const SIM_STRATEGIES: &[&str] = &["C3", "LOR", "LRT", "WRand", "P2C", "ORA"];
const CLUSTER_STRATEGIES: &[&str] = &["C3", "DS", "LOR"];

/// `(events_processed, count, p50, p99.9, mean_bits)` of a pinned sim run.
type SimDigest = (u64, u64, u64, u64, u64);
/// `(events_processed, reads, p99, mean_bits)` of a pinned cluster run.
type ClusterDigest = (u64, u64, u64, u64);

// ---- goldens captured before the zero-allocation rewrite -----------------
// (mega-fleet rows pinned at that scenario's introduction, alongside the
// three-tier kernel; crash-flux/flaky-net rows pinned at the
// request-lifecycle hardening's introduction; every older row is
// bit-identical across all three changes)

const SCENARIO_GOLDENS: &[(&str, u64)] = &[
    ("crash-flux/C3", 2043877774330935434),
    ("crash-flux/C3-noCC", 6431961928732625900),
    ("crash-flux/C3-noRC", 15002264132766175299),
    ("crash-flux/DS", 13093105039088276574),
    ("crash-flux/LOR", 14827472713032882375),
    ("crash-flux/LRT", 17154799870675725317),
    ("crash-flux/Nearest", 14533448508562729873),
    ("crash-flux/ORA", 0),
    ("crash-flux/P2C", 16626941724014691916),
    ("crash-flux/Primary", 12649903060600385671),
    ("crash-flux/RR", 16775129784544419603),
    ("crash-flux/Random", 11176400021246524490),
    ("crash-flux/WRand", 5713682082301649854),
    ("flaky-net/C3", 4031593305840699500),
    ("flaky-net/C3-noCC", 5394718398890976770),
    ("flaky-net/C3-noRC", 3207569583367091303),
    ("flaky-net/DS", 12758352570785813365),
    ("flaky-net/LOR", 1372026281614900520),
    ("flaky-net/LRT", 12931143494619906874),
    ("flaky-net/Nearest", 4492042859659148074),
    ("flaky-net/ORA", 0),
    ("flaky-net/P2C", 9298709928205131138),
    ("flaky-net/Primary", 3093964459137379615),
    ("flaky-net/RR", 5298536402458944883),
    ("flaky-net/Random", 17800054528881913395),
    ("flaky-net/WRand", 14905555092383374880),
    ("hetero-fleet/C3", 7050262698758109882),
    ("hetero-fleet/C3-noCC", 18279527324888245155),
    ("hetero-fleet/C3-noRC", 6772007575759189173),
    ("hetero-fleet/DS", 12470303762323777609),
    ("hetero-fleet/LOR", 8634786776414953962),
    ("hetero-fleet/LRT", 17785240299269616365),
    ("hetero-fleet/Nearest", 3997859243813752226),
    ("hetero-fleet/ORA", 0),
    ("hetero-fleet/P2C", 5218330690618766646),
    ("hetero-fleet/Primary", 5310932635249755573),
    ("hetero-fleet/RR", 4413659735633985249),
    ("hetero-fleet/Random", 1819907086238340354),
    ("hetero-fleet/WRand", 12106456419154545558),
    ("mega-fleet/C3", 3328357399988597455),
    ("mega-fleet/C3-noCC", 17322654640519654979),
    ("mega-fleet/C3-noRC", 1418286848514427208),
    ("mega-fleet/DS", 1203729500023910457),
    ("mega-fleet/LOR", 7597553776627808979),
    ("mega-fleet/LRT", 6562588991307864533),
    ("mega-fleet/Nearest", 18121773560648049824),
    ("mega-fleet/ORA", 9407041454031528839),
    ("mega-fleet/P2C", 17284629313583644851),
    ("mega-fleet/Primary", 3444066750861978085),
    ("mega-fleet/RR", 6277884077171246735),
    ("mega-fleet/Random", 8084691762338802668),
    ("mega-fleet/WRand", 10175098223761098140),
    ("multi-tenant/C3", 10320501728810496735),
    ("multi-tenant/C3-noCC", 7899227759370894826),
    ("multi-tenant/C3-noRC", 5198472214331896130),
    ("multi-tenant/DS", 17202452324515092241),
    ("multi-tenant/LOR", 11654545539142169525),
    ("multi-tenant/LRT", 15499363093663498861),
    ("multi-tenant/Nearest", 2065886965480563253),
    ("multi-tenant/ORA", 3503402422760651018),
    ("multi-tenant/P2C", 15726202817119232887),
    ("multi-tenant/Primary", 15248606952415660072),
    ("multi-tenant/RR", 6273110374646841913),
    ("multi-tenant/Random", 14776009371306420071),
    ("multi-tenant/WRand", 1758633105657830692),
    ("partition-flux/C3", 11418462125612477239),
    ("partition-flux/C3-noCC", 3671199638997418444),
    ("partition-flux/C3-noRC", 10656571227925946722),
    ("partition-flux/DS", 1596460537576233508),
    ("partition-flux/LOR", 4464348325114565251),
    ("partition-flux/LRT", 18027227600460906791),
    ("partition-flux/Nearest", 17901192505746482640),
    ("partition-flux/ORA", 0),
    ("partition-flux/P2C", 8660254727305619737),
    ("partition-flux/Primary", 3533695213404066039),
    ("partition-flux/RR", 6227154151659620025),
    ("partition-flux/Random", 11679460795533047847),
    ("partition-flux/WRand", 11480068889047646183),
];

const SIM_GOLDENS: &[(&str, SimDigest)] = &[
    ("C3", (23128, 5000, 2244608, 31064064, 4705223348656462522)),
    ("LOR", (23131, 5000, 3031040, 42729472, 4709330185231726648)),
    ("LRT", (23131, 5000, 3555328, 95944704, 4710897510025075150)),
    (
        "WRand",
        (23131, 5000, 2899968, 64225280, 4711154031152568100),
    ),
    ("P2C", (23131, 5000, 2801664, 53215232, 4710802122595927222)),
    ("ORA", (23114, 5000, 5799936, 39583744, 4709960860688340065)),
];

const CLUSTER_GOLDENS: &[(&str, ClusterDigest)] = &[
    ("C3", (40831, 5244, 41680896, 4710506973190377938)),
    ("DS", (40883, 5246, 47448064, 4711667718326740203)),
    ("LOR", (40844, 5248, 48496640, 4710766269355645577)),
];

#[test]
fn scenario_fingerprints_match_pre_rewrite_goldens() {
    let got = compute_cells();
    assert_eq!(
        got.len(),
        SCENARIO_GOLDENS.len(),
        "registry shape changed; regenerate the goldens deliberately"
    );
    for ((cell, fp), (gold_cell, gold_fp)) in got.iter().zip(SCENARIO_GOLDENS) {
        assert_eq!(cell, gold_cell, "cell order changed");
        assert_eq!(
            fp, gold_fp,
            "{cell}: fingerprint drifted from the pre-rewrite golden"
        );
    }
}

/// Flight-recorder neutrality: every cell, re-run with a recorder
/// attached, must reproduce the SAME pinned fingerprints as the plain
/// runs — the recorder is purely observational (no RNG draws, no
/// scheduling, read-only selector snapshots), so attaching it cannot
/// move a single decision. A drift here means telemetry changed results.
#[test]
fn scenario_fingerprints_are_recorder_neutral() {
    use c3::telemetry::Recorder;
    let scenarios = ScenarioRegistry::with_defaults();
    let strategies = c3::scenarios::scenario_registry();
    let mut traced_cells = 0u32;
    let mut got = Vec::new();
    for scenario in scenarios.names() {
        for strategy in strategies.names() {
            let params = ScenarioParams::sized(Strategy::named(strategy), SEED, OPS);
            let fp = match scenarios.run_recorded(
                scenario,
                &params,
                Recorder::with_default_capacity(),
            ) {
                Ok((report, rec)) => {
                    if !rec.is_empty() {
                        traced_cells += 1;
                    }
                    report.fingerprint()
                }
                Err(_) => UNSUPPORTED,
            };
            got.push((format!("{scenario}/{strategy}"), fp));
        }
    }
    assert_eq!(got.len(), SCENARIO_GOLDENS.len(), "registry shape changed");
    for ((cell, fp), (gold_cell, gold_fp)) in got.iter().zip(SCENARIO_GOLDENS) {
        assert_eq!(cell, gold_cell, "cell order changed");
        assert_eq!(
            fp, gold_fp,
            "{cell}: attaching a recorder changed the fingerprint"
        );
    }
    assert!(
        traced_cells > 0,
        "recorder-neutrality must be proven on runs that actually traced"
    );
}

#[test]
fn simulator_digests_match_pre_rewrite_goldens() {
    for (name, gold) in SIM_GOLDENS {
        let got = sim_digest(Strategy::named(*name));
        assert_eq!(&got, gold, "sim {name}: digest drifted");
    }
}

#[test]
fn cluster_digests_match_pre_rewrite_goldens() {
    for (name, gold) in CLUSTER_GOLDENS {
        let got = cluster_digest(Strategy::named(*name));
        assert_eq!(&got, gold, "cluster {name}: digest drifted");
    }
}
