//! Property and determinism tests for the SLO-seeking rate controller.
//!
//! The controller's two contracts, pinned the same way the cross_crate
//! goldens pin the runner's:
//!
//! 1. **Accuracy** (property-tested): on a monotone latency-vs-rate curve
//!    the reported maximum sustainable rate is within one bisection grid
//!    step of the true threshold — below it, and by less than one
//!    resolution.
//! 2. **Determinism**: a full `SloSweep` over real scenario-registry
//!    cells produces bit-identical `SloReport` fingerprints whether the
//!    cells fan out over 1 or 4 worker threads.

use c3::engine::{RateWindow, SloCell, SloSearch, SloSweep, Strategy};
use c3::metrics::SloPredicate;
use c3::scenarios::{RunTuning, ScenarioParams, ScenarioRegistry, MULTI_TENANT};
use proptest::prelude::*;

/// The largest grid rate whose (strictly increasing) latency stays under
/// the limit — the value bisection must find.
fn true_grid_max(window: &RateWindow, limit: f64, latency: impl Fn(f64) -> f64) -> Option<f64> {
    let mut best = None;
    for k in 0..=window.steps {
        let rate = window.rate(k);
        if latency(rate) <= limit {
            best = Some(rate);
        }
    }
    best
}

proptest! {
    /// On a synthetic monotone scenario (latency = base + slope · rate),
    /// the reported maximum matches the best grid point exactly, and so
    /// sits within one bisection step of the true analytic threshold.
    #[test]
    fn reported_max_is_within_one_step_of_the_true_threshold(
        base in 1.0f64..10.0,
        slope in 0.001f64..0.1,
        limit in 5.0f64..40.0,
        steps in 4u32..128,
    ) {
        let window = RateWindow::new(50.0, 5_000.0, steps);
        let latency = |rate: f64| base + slope * rate;
        let search = SloSearch {
            window,
            slo: SloPredicate::p99_under_ms(limit),
        };
        let out = search.seek(|rate| Ok::<f64, String>(latency(rate))).unwrap();
        prop_assert!(out.monotone, "a linear curve must pass the monotone check");

        match true_grid_max(&window, limit, latency) {
            None => {
                prop_assert!(out.max_rate.is_none(), "SLO fails on the whole grid");
            }
            Some(best) => {
                let max = out.max_rate.expect("a passing grid point exists");
                prop_assert!(
                    max == best,
                    "bisection must find the best grid point: {} vs {}",
                    max, best
                );
                // Against the analytic threshold: within one grid step.
                let true_threshold = ((limit - base) / slope).min(window.hi);
                prop_assert!(max <= true_threshold + 1e-9);
                prop_assert!(
                    true_threshold - max < window.resolution() + 1e-9,
                    "max {} vs threshold {} exceeds resolution {}",
                    max, true_threshold, window.resolution()
                );
            }
        }
    }

    /// Probe spend stays logarithmic in the grid size.
    #[test]
    fn probe_count_is_logarithmic(steps in 2u32..512) {
        let window = RateWindow::new(100.0, 1_000.0, steps);
        let search = SloSearch {
            window,
            slo: SloPredicate::p99_under_ms(20.0),
        };
        let out = search.seek(|rate| Ok::<f64, String>(rate / 40.0)).unwrap();
        let budget = 2 + 32 - u32::leading_zeros(steps.max(1));
        prop_assert!(
            out.probes() <= budget,
            "{} probes for {} steps (budget {})",
            out.probes(), steps, budget
        );
    }
}

/// A real sweep over registry cells is bit-identical for any worker
/// thread count — the same guarantee (and test shape) the cross_crate
/// goldens pin for `ScenarioRunner::run_all`.
#[test]
fn slo_sweep_fingerprints_are_thread_invariant() {
    let registry = ScenarioRegistry::with_defaults();
    let slo = SloPredicate::p99_under_ms(20.0);
    let cells: Vec<SloCell> = [Strategy::c3(), Strategy::lor()]
        .iter()
        .flat_map(|s| (1..=2).map(|seed| SloCell::new(MULTI_TENANT, s.name(), seed)))
        .collect();
    let sweep = SloSweep::new(slo);
    let run = |threads: usize| {
        sweep.run(
            &cells,
            threads,
            |_| Ok(RateWindow::new(1_000.0, 6_000.0, 8)),
            |cell, rate| {
                let params = ScenarioParams::tuned(
                    Strategy::named(&cell.strategy),
                    cell.seed,
                    2_000,
                    RunTuning {
                        offered_rate: Some(rate),
                        exact_latency: true,
                        ..RunTuning::default()
                    },
                );
                let report = registry
                    .run(&cell.scenario, &params)
                    .map_err(|e| e.to_string())?;
                Ok(slo.metric.value_ms(&report.headline().summary))
            },
        )
    };
    let serial = run(1);
    let parallel = run(4);
    assert_eq!(
        serial.fingerprint(),
        parallel.fingerprint(),
        "SloReport must be bit-identical across thread counts"
    );
    assert_eq!(serial.ran().count(), 4, "every cell runs");
    // And the sweep is reproducible outright.
    assert_eq!(serial.fingerprint(), run(1).fingerprint());
}

/// The controller's skip path mirrors the registry's unsupported-cell
/// errors instead of aborting the sweep.
#[test]
fn unsupported_cells_skip_with_the_registry_reason() {
    let registry = ScenarioRegistry::with_defaults();
    let slo = SloPredicate::p99_under_ms(50.0);
    let cells = [SloCell::new("hetero-fleet", "ORA", 1)];
    let report = SloSweep::new(slo).run(
        &cells,
        1,
        |_| Ok(RateWindow::new(500.0, 4_000.0, 4)),
        |cell, rate| {
            let params = ScenarioParams::tuned(
                Strategy::named(&cell.strategy),
                cell.seed,
                2_000,
                RunTuning {
                    offered_rate: Some(rate),
                    ..RunTuning::default()
                },
            );
            let r = registry
                .run(&cell.scenario, &params)
                .map_err(|e| e.to_string())?;
            Ok(slo.metric.value_ms(&r.headline().summary))
        },
    );
    assert_eq!(report.ran().count(), 0);
    let skipped: Vec<_> = report.skipped().collect();
    assert_eq!(skipped.len(), 1);
    assert!(
        skipped[0].reason.contains("cannot drive"),
        "skip reason must carry the registry error, got {:?}",
        skipped[0].reason
    );
}
