//! Telemetry acceptance tier: the flight recorder's tail attribution must
//! *explain* the paper's headline scenarios, not just decorate them.
//!
//! Under partition-flux and hetero-fleet, DS's interval-frozen rankings
//! keep routing tail requests into replicas with deep queues while better
//! candidates sit idle — the Fig. 2 mechanism. Attributed per request,
//! that shows up as ground-truth selection regret (chosen replica's
//! pending depth minus the group's shortest at decision time) sitting well
//! above C3's in the p99+ bucket. Queue regret is the cross-strategy
//! metric on purpose: a dark node starves DS's latency reservoirs, so
//! DS's *freshly recomputed* scores are as blind as its frozen ones, and
//! only the driver's ground truth can convict it.

use c3::engine::Strategy;
use c3::scenarios::{ScenarioParams, ScenarioRegistry, HETERO_FLEET, PARTITION_FLUX};
use c3::telemetry::{attribute_tail, Recorder, TailAttribution};

const OPS: u64 = 8_000;
const SEEDS: [u64; 2] = [1, 2];

/// Recorded run → p99+ tail attribution for one cell.
fn attribution(
    reg: &ScenarioRegistry,
    scenario: &str,
    strategy: &Strategy,
    seed: u64,
) -> TailAttribution {
    let params = ScenarioParams::sized(strategy.clone(), seed, OPS);
    let capacity = (OPS as usize) * 6;
    let (_, rec) = reg
        .run_recorded(scenario, &params, Recorder::new(capacity))
        .unwrap_or_else(|e| panic!("{scenario}/{}: {e}", strategy.label()));
    attribute_tail(rec.events(), scenario, strategy.label(), 0.99)
}

/// Seed-averaged mean tail queue-regret, with sanity checks that the
/// attribution actually has substance (requests joined, tail non-empty,
/// regret measured rather than NaN).
fn mean_tail_queue_regret(reg: &ScenarioRegistry, scenario: &str, strategy: &Strategy) -> f64 {
    SEEDS
        .iter()
        .map(|&seed| {
            let attr = attribution(reg, scenario, strategy, seed);
            assert!(
                attr.joined as u64 > OPS / 2,
                "{scenario}/{}: only {} of {OPS} requests joined",
                strategy.label(),
                attr.joined
            );
            assert!(
                !attr.tail.is_empty(),
                "{scenario}/{}: empty tail bucket",
                strategy.label()
            );
            assert!(
                attr.mean_queue_regret.is_finite(),
                "{scenario}/{}: queue regret unmeasured (driver queues invisible?)",
                strategy.label()
            );
            attr.mean_queue_regret
        })
        .sum::<f64>()
        / SEEDS.len() as f64
}

#[test]
fn ds_tail_carries_more_selection_regret_than_c3() {
    let reg = ScenarioRegistry::with_defaults();
    for scenario in [PARTITION_FLUX, HETERO_FLEET] {
        let c3 = mean_tail_queue_regret(&reg, scenario, &Strategy::c3());
        let ds = mean_tail_queue_regret(&reg, scenario, &Strategy::dynamic_snitching());
        assert!(
            ds > c3,
            "{scenario}: DS mean tail queue-regret {ds:.1} must exceed C3's {c3:.1} — \
             the frozen-ranking herd should be visible in the trace"
        );
    }
}
